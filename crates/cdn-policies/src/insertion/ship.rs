//! SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).
//!
//! **Adaptation from CPU caches**: SHiP keys its Signature History Counter
//! Table (SHCT) by the PC of the missing instruction. Object caches have no
//! PCs, so we use the strongest stable object signature available to a CDN:
//! the size class (log₂ bucket), which both the paper's ASC-IP and
//! AdaptSize identify as the dominant reuse predictor for CDN objects. The
//! mechanics are unchanged: a 3-bit saturating counter per signature,
//! incremented when a resident object is re-referenced, decremented when an
//! object is evicted without reuse; a zero counter predicts "distant
//! re-reference" and sends the insert to the LRU position.

use cdn_cache::{EntryMeta, InsertPos, LruQueue, Request, Tick};

use super::{InsertionDecider, MissDecision, PromoteAction};

const COUNTER_MAX: u8 = 7;
const N_SIGNATURES: usize = 64;

/// Signature-based hit predictor.
#[derive(Debug, Clone)]
pub struct Ship {
    shct: [u8; N_SIGNATURES],
}

/// Size-class signature: log₂ of the object size, clamped to the table.
fn signature(size: u64) -> usize {
    (64 - size.max(1).leading_zeros() as usize).min(N_SIGNATURES - 1)
}

impl Ship {
    /// Fresh predictor with weakly-reusable priors (counters start at 1, so
    /// unseen classes insert at MRU until proven dead).
    pub fn new() -> Self {
        Ship {
            shct: [1; N_SIGNATURES],
        }
    }

    /// Counter value of a size's signature (diagnostics).
    pub fn counter_for(&self, size: u64) -> u8 {
        self.shct[signature(size)]
    }
}

impl Default for Ship {
    fn default() -> Self {
        Self::new()
    }
}

impl InsertionDecider for Ship {
    fn on_miss(&mut self, req: &Request, _cache: &LruQueue) -> MissDecision {
        let sig = signature(req.size);
        let pos = if self.shct[sig] == 0 {
            InsertPos::Lru
        } else {
            InsertPos::Mru
        };
        MissDecision {
            pos,
            tag: sig as u64 + 1, // +1 so tag 0 still means "untagged"
        }
    }

    fn on_hit(&mut self, req: &Request, meta: &EntryMeta, _cache: &LruQueue) -> PromoteAction {
        // Re-reference: strengthen the signature. Only the first hit of a
        // residency trains (SHiP's outcome bit), matching the original.
        if meta.hits == 1 {
            let sig = signature(req.size);
            self.shct[sig] = (self.shct[sig] + 1).min(COUNTER_MAX);
        }
        PromoteAction::ToMru
    }

    fn on_evict(&mut self, victim: &EntryMeta, _tick: Tick) {
        if victim.hits == 0 && victim.tag != 0 {
            let sig = (victim.tag - 1) as usize;
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::InsertionCache;
    use crate::replay;
    use cdn_cache::object::micro_trace;
    use cdn_cache::CachePolicy;

    #[test]
    fn signatures_bucket_by_log_size() {
        assert_eq!(signature(1024), signature(1500));
        assert_ne!(signature(1024), signature(4096));
        assert!(signature(u64::MAX) < N_SIGNATURES);
        assert!(signature(0) < N_SIGNATURES);
    }

    #[test]
    fn dead_class_counter_decays_to_lru_insert() {
        let mut p = InsertionCache::new(Ship::new(), 4, "SHiP");
        // Stream of never-reused 1-byte objects: counter for that class
        // decays to 0 and later inserts go to the LRU position.
        let reqs: Vec<(u64, u64)> = (0..50).map(|i| (i, 1)).collect();
        for r in micro_trace(&reqs) {
            p.on_request(&r);
        }
        assert_eq!(p.decider().counter_for(1), 0);
        assert!(!p.queue().peek_lru().unwrap().inserted_at_mru);
    }

    #[test]
    fn reused_class_counter_recovers() {
        let mut ship = Ship::new();
        ship.shct[signature(1)] = 0;
        let mut p = InsertionCache::new(ship, 10, "SHiP");
        // The same small object re-referenced repeatedly trains the class up.
        let reqs: Vec<(u64, u64)> = (0..20).map(|_| (7, 1)).collect();
        for r in micro_trace(&reqs) {
            p.on_request(&r);
        }
        assert!(p.decider().counter_for(1) >= 1);
    }

    #[test]
    fn protects_hot_set_against_dead_size_class() {
        // Hot pair of 10-byte objects + scan of dead 1000-byte objects.
        let mut reqs = Vec::new();
        let mut next = 100u64;
        for i in 0..900u64 {
            if i % 3 == 0 {
                reqs.push((i / 3 % 2, 10));
            } else {
                reqs.push((next, 1000));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let mut ship = InsertionCache::new(Ship::new(), 2020, "SHiP");
        let mut lru = InsertionCache::new(super::super::deciders::Mip, 2020, "LRU");
        let s = replay(&mut ship, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(s < l, "SHiP {s} vs LRU {l}");
    }
}
