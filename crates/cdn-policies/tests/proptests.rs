//! Property tests over the whole policy zoo: every algorithm must honour
//! its byte budget, never report impossible hits, and (for the LRU-victim
//! family) agree with a reference model on the hit/miss sequence.

use cdn_cache::{CachePolicy, FxHashSet, Request};
use cdn_policies::admission::{AdaptSize, TinyLfu, TwoQ};
use cdn_policies::insertion::{
    deciders::{Bip, Lip, Mip},
    AscIp, Daaip, Dgippr, Dip, Dta, InsertionCache, Pipp, Ship,
};
use cdn_policies::replacement::{
    Arc as ArcPolicy, Cacheus, Gdsf, GlCache, LeCar, Lhd, Lrb, Lru, LruK, S4Lru, SsLru,
};
use proptest::prelude::*;

fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..80, 1u64..200), 1..400)
}

/// Every policy in one boxed list (capacity fixed inside).
fn zoo(capacity: u64) -> Vec<Box<dyn CachePolicy>> {
    vec![
        Box::new(Lru::new(capacity)),
        Box::new(InsertionCache::new(Mip, capacity, "LRU")),
        Box::new(InsertionCache::new(Lip, capacity, "LIP")),
        Box::new(InsertionCache::new(Bip::new(1), capacity, "BIP")),
        Box::new(InsertionCache::new(Dip::new(1), capacity, "DIP")),
        Box::new(Pipp::new(capacity, 1)),
        Box::new(InsertionCache::new(Dta::new(2048), capacity, "DTA")),
        Box::new(InsertionCache::new(Ship::new(), capacity, "SHiP")),
        Box::new(Dgippr::new(capacity, 1)),
        Box::new(InsertionCache::new(Daaip::new(2048), capacity, "DAAIP")),
        Box::new(InsertionCache::new(
            AscIp::default_for_cdn(),
            capacity,
            "ASC-IP",
        )),
        Box::new(LruK::new(capacity)),
        Box::new(S4Lru::new(capacity)),
        Box::new(SsLru::new(capacity)),
        Box::new(Gdsf::new(capacity)),
        Box::new(Lhd::new(capacity, 1)),
        Box::new(ArcPolicy::new(capacity)),
        Box::new(LeCar::new(capacity, 1)),
        Box::new(Cacheus::new(capacity, 1)),
        Box::new(Lrb::new(capacity, 1)),
        Box::new(GlCache::new(capacity)),
        Box::new(TwoQ::new(capacity)),
        Box::new(TinyLfu::new(capacity)),
        Box::new(AdaptSize::new(capacity, 1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Budget + sanity invariants for the entire zoo on random streams.
    #[test]
    fn all_policies_honour_budget(pairs in arb_pairs(), capacity in 100u64..2000) {
        let trace: Vec<Request> = pairs
            .iter()
            .enumerate()
            .map(|(t, &(id, size))| Request::new(t as u64, id, size))
            .collect();
        for mut p in zoo(capacity) {
            let mut seen: FxHashSet<u64> = FxHashSet::default();
            for r in &trace {
                let outcome = p.on_request(r);
                // A hit on a never-seen object is impossible.
                if outcome.is_hit() {
                    prop_assert!(
                        seen.contains(&r.id.0),
                        "{}: hit on first access of {}",
                        p.name(),
                        r.id
                    );
                }
                seen.insert(r.id.0);
                prop_assert!(
                    p.used_bytes() <= capacity,
                    "{}: {} > {capacity}",
                    p.name(),
                    p.used_bytes()
                );
            }
            prop_assert!(p.memory_bytes() > 0, "{}", p.name());
            let s = p.stats();
            prop_assert_eq!(s.resident_bytes, p.used_bytes());
        }
    }

    /// The InsertionCache-with-Mip must be byte-for-byte identical to LRU.
    #[test]
    fn mip_is_lru(pairs in arb_pairs(), capacity in 100u64..2000) {
        let trace: Vec<Request> = pairs
            .iter()
            .enumerate()
            .map(|(t, &(id, size))| Request::new(t as u64, id, size))
            .collect();
        let mut a = Lru::new(capacity);
        let mut b = InsertionCache::new(Mip, capacity, "LRU");
        for r in &trace {
            prop_assert_eq!(a.on_request(r), b.on_request(r));
        }
    }
}
