//! Model-based differential harness for the cache core (DESIGN.md §13).
//!
//! Every test here drives a *real* structure (the O(1) intrusive-list
//! implementations in `cdn-cache`, or a full policy) and an obviously
//! correct *reference model* (`ModelLru` / `ModelGhost` / `ModelSegQ` /
//! `ModelLruPolicy` — Vec-based, u128 ledgers) through the same long,
//! seeded operation sequence, asserting identical observable behavior at
//! every step: membership, order, byte ledger, return values, and the
//! hit/miss/rejected outcome stream. Op mixes deliberately include the
//! adversarial shapes from ISSUE.md: size 0, size == capacity,
//! size > capacity, sizes that would sum past `u64::MAX`, duplicate keys,
//! and reuse-after-ghost. `audit()` (always compiled; the `audit` cargo
//! feature only gates hot-path calls inside the library) is invoked on the
//! real structure after every mutation.

use cdn_cache::ghost::GhostEntry;
use cdn_cache::{
    CachePolicy, GhostList, InsertPos, LruQueue, ModelGhost, ModelLru, ModelLruPolicy, ModelSegQ,
    ObjectId, Request, SegmentedQueue, SimRng,
};
use cdn_policies::insertion::{Lip, Mip};
use cdn_policies::replacement::Lru;
use cdn_policies::InsertionCache;
use cdn_sim::{PolicyKind, TraceCtx};
use cdn_trace::degenerate_corpus;
use scip::core::{LAMBDA_MAX, LAMBDA_MIN};
use scip::Scip;

const CAP: u64 = 1 << 20; // 1 MiB toy cache for structure differentials.

/// Sizes that exercise every boundary the size ledger has: zero, tiny,
/// around half capacity (so two residents overflow), exactly capacity,
/// just over, and values that would wrap a u64 accumulator.
fn adversarial_size(rng: &mut SimRng, capacity: u64) -> u64 {
    match rng.u64_below(12) {
        0 => 0,
        1 => 1,
        2 => capacity / 2,
        3 => capacity / 2 + 1,
        4 => capacity,
        5 => capacity + 1,
        6 => u64::MAX / 2,
        7 => u64::MAX,
        _ => 1 + rng.u64_below((capacity / 4).max(1)),
    }
}

/// Small id universe so duplicate keys and reuse-after-evict happen often.
fn pick_id(rng: &mut SimRng) -> ObjectId {
    ObjectId::from(1 + rng.u64_below(64))
}

fn assert_lru_equiv(real: &LruQueue, model: &ModelLru, step: usize) {
    real.audit().unwrap_or_else(|e| panic!("step {step}: {e}"));
    assert_eq!(real.capacity(), model.capacity(), "capacity @ step {step}");
    assert_eq!(
        real.used_bytes(),
        model.used_bytes(),
        "used_bytes @ step {step}"
    );
    assert_eq!(real.len(), model.len(), "len @ step {step}");
    // Full order + metadata equality, MRU first.
    let got: Vec<_> = real.iter().collect();
    let want: Vec<_> = model.iter().copied().collect();
    assert_eq!(got, want, "queue order/metadata diverged @ step {step}");
    assert_eq!(
        real.peek_lru(),
        model.peek_lru().copied(),
        "peek_lru @ step {step}"
    );
    assert_eq!(
        real.peek_mru(),
        model.peek_mru().copied(),
        "peek_mru @ step {step}"
    );
}

/// 12k seeded ops through LruQueue vs ModelLru: inserts at both ends,
/// hits, promotions, demotions, removals, explicit evictions, and
/// capacity resizes, with adversarial sizes throughout.
#[test]
fn differential_lru_queue_vs_model() {
    for seed in [1u64, 42, 0xC0FFEE] {
        let mut rng = SimRng::new(seed);
        let mut real = LruQueue::new(CAP);
        let mut model = ModelLru::new(CAP);
        for step in 0..12_000usize {
            let id = pick_id(&mut rng);
            let tick = step as u64;
            match rng.u64_below(11) {
                0 | 1 => {
                    // Insert (skipping duplicates exactly like callers must).
                    let size = adversarial_size(&mut rng, real.capacity());
                    assert_eq!(
                        real.admissible(size),
                        model.admissible(size),
                        "admissible({size}) @ step {step}"
                    );
                    if !real.contains(id) && real.admissible(size) {
                        while real.needs_eviction_for(size) {
                            let a = real.evict_lru();
                            let b = model.evict_lru();
                            assert_eq!(a, b, "evict-for-insert @ step {step}");
                        }
                        if rng.chance(0.5) {
                            real.insert_mru(id, size, tick);
                            model.insert_mru(id, size, tick);
                        } else {
                            real.insert_lru(id, size, tick);
                            model.insert_lru(id, size, tick);
                        }
                    }
                }
                2 | 3 => {
                    assert_eq!(real.contains(id), model.contains(id));
                    if real.contains(id) {
                        real.record_hit(id, tick);
                        model.record_hit(id, tick);
                        real.promote_to_mru(id);
                        model.promote_to_mru(id);
                    }
                }
                4 => {
                    if real.contains(id) {
                        real.demote_to_lru(id);
                        model.demote_to_lru(id);
                    }
                }
                5 => {
                    if real.contains(id) {
                        real.promote_one(id);
                        model.promote_one(id);
                    }
                }
                6 => {
                    let a = real.remove(id);
                    let b = model.remove(id);
                    assert_eq!(a, b, "remove @ step {step}");
                }
                7 => {
                    let a = real.evict_lru();
                    let b = model.evict_lru();
                    assert_eq!(a, b, "evict_lru @ step {step}");
                }
                8 => {
                    // Resize, including shrink-to-zero and re-grow.
                    let new_cap = match rng.u64_below(4) {
                        0 => 0,
                        1 => CAP / 4,
                        2 => CAP / 2,
                        _ => CAP,
                    };
                    let a = real.set_capacity(new_cap);
                    let b = model.set_capacity(new_cap);
                    assert_eq!(a, b, "set_capacity({new_cap}) evictions @ step {step}");
                }
                9 => {
                    // Burst-insert a block of fresh ids well outside the
                    // 64-id universe, forcing the fused index to grow
                    // (and rehash) mid-sequence, then tear the block back
                    // down — either one key at a time (mass backward-shift
                    // deletion) or all at once (rebuild from zero).
                    let base = 1_000_000 + (step as u64) * 4096;
                    let burst = 64 + rng.u64_below(192);
                    for d in 0..burst {
                        let bid = ObjectId::from(base + d);
                        if real.admissible(1) {
                            while real.needs_eviction_for(1) {
                                assert_eq!(
                                    real.evict_lru(),
                                    model.evict_lru(),
                                    "burst evict @ step {step}"
                                );
                            }
                            real.insert_mru(bid, 1, tick);
                            model.insert_mru(bid, 1, tick);
                        }
                    }
                    if rng.chance(0.5) {
                        for d in 0..burst {
                            let bid = ObjectId::from(base + d);
                            assert_eq!(
                                real.remove(bid),
                                model.remove(bid),
                                "burst drain @ step {step}"
                            );
                        }
                    } else {
                        real.clear();
                        model.clear();
                    }
                }
                _ => {
                    assert_eq!(real.get(id), model.get(id).copied(), "get @ step {step}");
                }
            }
            assert_lru_equiv(&real, &model, step);
        }
        // Leave the queue at full capacity for the next seed's baseline.
        assert_eq!(real.set_capacity(CAP), model.set_capacity(CAP));
    }
}

/// 12k seeded ops through GhostList vs ModelGhost: adds (with budget
/// truncation), duplicate re-adds, deletes, and membership probes.
#[test]
fn differential_ghost_list_vs_model() {
    for seed in [7u64, 99, 0xBEEF] {
        let mut rng = SimRng::new(seed);
        let mut real = GhostList::new(CAP / 8);
        let mut model = ModelGhost::new(CAP / 8);
        for step in 0..12_000usize {
            let id = pick_id(&mut rng);
            match rng.u64_below(8) {
                0..=4 => {
                    let entry = GhostEntry {
                        id,
                        size: adversarial_size(&mut rng, CAP / 8),
                        evicted_tick: step as u64,
                        tag: rng.next_u64() % 5,
                    };
                    real.add(entry);
                    model.add(entry);
                }
                5 => {
                    let a = real.delete(id);
                    let b = model.delete(id);
                    assert_eq!(a, b, "delete @ step {step}");
                }
                _ => {
                    assert_eq!(real.contains(id), model.contains(id));
                    assert_eq!(real.get(id).copied(), model.get(id).copied());
                }
            }
            real.audit().unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert_eq!(real.used_bytes(), model.used_bytes(), "used @ step {step}");
            assert_eq!(real.len(), model.len(), "len @ step {step}");
            let got: Vec<_> = real.iter().copied().collect();
            let want: Vec<_> = model.iter().copied().collect();
            assert_eq!(got, want, "ghost order diverged @ step {step}");
        }
    }
}

/// 10k seeded ops through SegmentedQueue vs ModelSegQ (4 uneven segments):
/// per-segment inserts with cascaded evictions, hit-moves between
/// segments, global promotions, removals, and global evictions.
#[test]
fn differential_segq_vs_model() {
    let fractions = [0.4, 0.3, 0.2, 0.1];
    for seed in [3u64, 17, 0xACE] {
        let mut rng = SimRng::new(seed);
        let mut real = SegmentedQueue::new(CAP, &fractions);
        let mut model = ModelSegQ::new(CAP, &fractions);
        assert_eq!(real.capacity(), model.capacity());
        for step in 0..10_000usize {
            let id = pick_id(&mut rng);
            let tick = step as u64;
            let seg = rng.usize_below(fractions.len());
            match rng.u64_below(8) {
                0..=2 => {
                    // Sizes capped at one segment's budget: SegmentedQueue
                    // requires callers to pre-filter (admission happens at
                    // the policy layer); oversize contracts are covered by
                    // the all-policy sweep below.
                    let size = 1 + rng.u64_below(CAP / 16);
                    if !real.contains(id) {
                        let a = real.insert(seg, id, size, tick);
                        let b = model.insert(seg, id, size, tick);
                        assert_eq!(a, b, "insert cascade @ step {step}");
                    }
                }
                3 | 4 => {
                    assert_eq!(real.segment_of(id), model.segment_of(id));
                    if real.contains(id) {
                        let a = real.hit_move_to(id, seg, tick);
                        let b = model.hit_move_to(id, seg, tick);
                        assert_eq!(a, b, "hit_move_to cascade @ step {step}");
                    }
                }
                5 => {
                    if real.contains(id) {
                        real.promote_one_global(id);
                        model.promote_one_global(id);
                    }
                }
                6 => {
                    let a = real.remove(id);
                    let b = model.remove(id);
                    assert_eq!(a, b, "remove @ step {step}");
                }
                _ => {
                    let a = real.evict_global();
                    let b = model.evict_global();
                    assert_eq!(a, b, "evict_global @ step {step}");
                }
            }
            real.audit().unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert_eq!(real.used_bytes(), model.used_bytes(), "used @ step {step}");
            assert_eq!(real.len(), model.len(), "len @ step {step}");
            let got: Vec<_> = real.iter_global().collect();
            let want: Vec<_> = model.iter_global().copied().collect();
            assert_eq!(got, want, "global order diverged @ step {step}");
        }
    }
}

/// Seeded request stream with adversarial sizes for policy differentials.
fn adversarial_trace(seed: u64, n: usize, capacity: u64) -> Vec<Request> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|t| {
            let id = 1 + rng.u64_below(48);
            // Size is a pure function of the id so the trace is
            // well-formed (one object, one size) yet hits every
            // adversarial bucket across the id universe.
            let size = match id % 8 {
                0 => 0,
                1 => capacity,
                2 => capacity + 1,
                3 => u64::MAX,
                _ => 1 + (id * 131) % (capacity / 4),
            };
            Request {
                tick: t as u64,
                id: id.into(),
                size,
                wall_secs: t as f64 * 1e-3,
            }
        })
        .collect()
}

/// Exact AccessKind-sequence differential: the real `Lru` (MIP insertion)
/// and `InsertionCache<Lip>` must produce, request for request, the same
/// outcome stream and occupancy as the model policy over 10k adversarial
/// requests — including identical `Rejected(TooLarge)` decisions.
#[test]
fn differential_policies_vs_model_policy() {
    let capacity = 1 << 16;
    let trace = adversarial_trace(0xD1FF, 10_000, capacity);

    // (real policy, matching model insertion position)
    let runs: Vec<(Box<dyn CachePolicy>, InsertPos)> = vec![
        (Box::new(Lru::new(capacity)), InsertPos::Mru),
        (
            Box::new(InsertionCache::new(Mip, capacity, "MIP")),
            InsertPos::Mru,
        ),
        (
            Box::new(InsertionCache::new(Lip, capacity, "LIP")),
            InsertPos::Lru,
        ),
    ];
    for (mut real, pos) in runs {
        let mut model = ModelLruPolicy::new(capacity, pos);
        let name = real.name().to_string();
        for (i, req) in trace.iter().enumerate() {
            let a = real.on_request(req);
            let b = model.on_request(req);
            assert_eq!(a, b, "{name}: outcome diverged @ request {i} ({req:?})");
            assert_eq!(
                real.used_bytes(),
                model.used_bytes(),
                "{name}: occupancy diverged @ request {i}"
            );
            if req.size > capacity {
                assert!(
                    a.is_rejected(),
                    "{name}: oversized object must be rejected @ request {i}"
                );
            }
        }
        let got: Vec<_> = model.queue().iter().map(|m| (m.id, m.size)).collect();
        assert!(
            !got.is_empty(),
            "{name}: model ended empty — trace too weak"
        );
    }
}

/// All 30 policies — via `dispatch_policy!` through `run_with_observer` —
/// over seeded adversarial traces: no panics, occupancy never exceeds
/// capacity at any step, every oversized object is `Rejected`, and the
/// outcome stream is bit-identical across two runs (determinism).
#[test]
fn all_policies_survive_adversarial_traces() {
    let capacity = 1 << 16;
    for seed in [11u64, 0xFEED] {
        let trace = adversarial_trace(seed, 10_000, capacity);
        let ctx = TraceCtx::new(&trace, seed);
        for kind in PolicyKind::ALL {
            let mut outcomes = Vec::with_capacity(trace.len());
            kind.run_with_observer(capacity, &trace, &ctx, |i, req, outcome, used, cap| {
                assert!(
                    used <= cap,
                    "{}: occupancy {used} > capacity {cap} @ request {i}",
                    kind.label()
                );
                if req.size > capacity {
                    assert!(
                        outcome.is_rejected(),
                        "{}: oversized object (size {}) not rejected @ request {i}",
                        kind.label(),
                        req.size
                    );
                }
                if outcome.is_rejected() {
                    assert!(
                        !outcome.is_hit(),
                        "{}: Rejected must count as a miss",
                        kind.label()
                    );
                }
                outcomes.push(outcome);
            });
            assert_eq!(outcomes.len(), trace.len(), "{}", kind.label());

            let mut second = Vec::with_capacity(trace.len());
            kind.run_with_observer(capacity, &trace, &ctx, |_, _, outcome, _, _| {
                second.push(outcome)
            });
            assert_eq!(
                outcomes,
                second,
                "{}: outcome stream not deterministic",
                kind.label()
            );
        }
    }
}

/// All 30 policies over the degenerate-trace corpus (empty, single object,
/// all-unique ZRO storm, all-same-key, max-size, oversized, zero-size,
/// mixed adversarial): no panics, occupancy bounded at every step.
#[test]
fn all_policies_survive_degenerate_corpus() {
    let capacity = 1 << 16;
    for (name, trace) in degenerate_corpus(capacity) {
        let ctx = TraceCtx::new(&trace, 5);
        for kind in PolicyKind::ALL {
            kind.run_with_observer(capacity, &trace, &ctx, |i, req, outcome, used, cap| {
                assert!(
                    used <= cap,
                    "{} on {name:?}: occupancy {used} > {cap} @ request {i}",
                    kind.label()
                );
                if req.size > capacity {
                    assert!(
                        outcome.is_rejected(),
                        "{} on {name:?}: oversized not rejected @ request {i}",
                        kind.label()
                    );
                }
            });
        }
    }
}

/// SCIP λ regression (ISSUE.md satellite): an all-unique ZRO storm never
/// produces a ghost hit, so a naive multiplicative decrease would drive
/// λ → 0 (or NaN via 0/0 windows). The clamp must keep λ finite and in
/// [LAMBDA_MIN, LAMBDA_MAX] on every request, and ω weights must stay
/// finite; `Scip::audit()` checks the full structural invariant set.
#[test]
fn scip_lambda_survives_zero_ghost_hit_windows() {
    let capacity = 1 << 16;
    let corpus = degenerate_corpus(capacity);
    let (_, storm) = corpus
        .iter()
        .find(|(n, _)| *n == "zro-storm-all-unique")
        .expect("corpus names are stable");
    let mut scip = Scip::new(capacity, 9);
    for (i, req) in storm.iter().enumerate() {
        scip.on_request(req);
        let lambda = scip.core().lambda();
        assert!(
            lambda.is_finite() && (LAMBDA_MIN..=LAMBDA_MAX).contains(&lambda),
            "λ = {lambda} escaped [{LAMBDA_MIN}, {LAMBDA_MAX}] @ request {i}"
        );
        let (wm, wp) = (scip.core().omega_m(), scip.core().omega_p());
        assert!(
            wm.is_finite() && wp.is_finite() && wm >= 0.0 && wp >= 0.0,
            "ω = ({wm}, {wp}) degenerate @ request {i}"
        );
    }
    scip.audit().expect("SCIP invariants after ZRO storm");
}
