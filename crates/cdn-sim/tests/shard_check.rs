//! Sharded-replay exactness: the threaded aggregate must equal the serial
//! per-partition reference on arbitrary streams (property test), and a
//! committed golden recording pins the 2-shard ledgers of every policy so
//! a behaviour drift in partitioning, capacity splitting, or the merge
//! arithmetic cannot land silently.
//!
//! Regenerate the recording (only on an intentional behaviour change):
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cdn-sim --test shard_check
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use cdn_sim::{run_sharded, run_sharded_serial, BatchMode, PolicyKind};
use cdn_trace::{partition_columns, TraceColumns};
use proptest::prelude::*;

const SEED: u64 = 5;

fn sharded_from(pairs: &[(u64, u64)], shards: usize) -> cdn_trace::ShardedTrace {
    let trace: Vec<cdn_cache::Request> = pairs
        .iter()
        .enumerate()
        .map(|(t, &(id, size))| cdn_cache::Request::new(t as u64, id, size))
        .collect();
    partition_columns(&TraceColumns::from_requests(&trace), shards)
}

proptest! {
    // Replays are slow relative to generator-style properties; a smaller
    // case count still exercises shard counts × stream shapes broadly.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Threaded and serial sharded replays agree on every ledger counter,
    /// per shard and in aggregate, for arbitrary streams and shard counts.
    #[test]
    fn threaded_aggregate_equals_serial_reference(
        pairs in proptest::collection::vec((0u64..150, 1u64..80), 1..800),
        shards in 1usize..6,
        cap in 200u64..5000,
    ) {
        let sharded = sharded_from(&pairs, shards);
        for kind in [PolicyKind::Lru, PolicyKind::Scip, PolicyKind::TinyLfu] {
            let threaded = run_sharded(kind, cap, &sharded, SEED, BatchMode::Off);
            let serial = run_sharded_serial(kind, cap, &sharded, SEED, BatchMode::Off);
            prop_assert_eq!(
                threaded.aggregate, serial.aggregate,
                "{:?}: threaded and serial sharded aggregates diverged", kind
            );
            for (s, (t, r)) in threaded.per_shard.iter().zip(&serial.per_shard).enumerate() {
                prop_assert_eq!(t.hits, r.hits, "{:?} shard {} hits", kind, s);
                prop_assert_eq!(t.misses, r.misses, "{:?} shard {} misses", kind, s);
                prop_assert_eq!(t.hit_bytes, r.hit_bytes, "{:?} shard {} hit_bytes", kind, s);
                prop_assert_eq!(t.miss_bytes, r.miss_bytes, "{:?} shard {} miss_bytes", kind, s);
            }
            // The merge is plain summation — re-derive it independently.
            let hits: u64 = threaded.per_shard.iter().map(|m| m.hits).sum();
            let misses: u64 = threaded.per_shard.iter().map(|m| m.misses).sum();
            prop_assert_eq!(threaded.aggregate.hits, hits);
            prop_assert_eq!(threaded.aggregate.misses, misses);
            prop_assert_eq!(threaded.aggregate.requests, hits + misses);
        }
    }

    /// Batching is advisory: lookahead hints never change any ledger.
    #[test]
    fn batched_sharded_ledgers_identical(
        pairs in proptest::collection::vec((0u64..100, 1u64..60), 1..500),
        shards in 1usize..5,
    ) {
        let sharded = sharded_from(&pairs, shards);
        let plain = run_sharded(PolicyKind::Scip, 1500, &sharded, SEED, BatchMode::Off);
        let batched = run_sharded(PolicyKind::Scip, 1500, &sharded, SEED, BatchMode::Fixed(8));
        prop_assert_eq!(plain.aggregate, batched.aggregate);
    }
}

// ---------------------------------------------------------------------------
// Golden 2-shard recording: every policy's aggregate ledger on a fixed
// Zipf-flavoured trace, committed to tests/data/golden_shards_v1.txt.
// ---------------------------------------------------------------------------

const GOLDEN_SHARDS: usize = 2;
const GOLDEN_CAPACITY: u64 = 1 << 14;

fn golden_trace() -> cdn_trace::ShardedTrace {
    // Deterministic skewed mix: a hot core, a mid tier, and a one-hit
    // tail, with sizes varying so byte ledgers differ from object ledgers.
    let mut pairs = Vec::with_capacity(40_000);
    for i in 0..40_000u64 {
        pairs.push(match i % 10 {
            0..=4 => (i * 31 % 64, 200 + i % 300),
            5..=7 => (1_000 + i * 17 % 2_000, 50 + i % 900),
            _ => (100_000 + i, 1 + i % 2_000),
        });
    }
    sharded_from(&pairs, GOLDEN_SHARDS)
}

fn data_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("golden_shards_v1.txt")
}

/// `policy -> (hits, misses, hit_bytes, miss_bytes)` aggregate ledgers.
fn compute_all() -> BTreeMap<String, (u64, u64, u64, u64)> {
    let sharded = golden_trace();
    let mut out = BTreeMap::new();
    for kind in PolicyKind::ALL {
        let report = run_sharded(kind, GOLDEN_CAPACITY, &sharded, SEED, BatchMode::Off);
        let a = report.aggregate;
        out.insert(
            kind.label().to_string(),
            (a.hits, a.misses, a.hit_bytes, a.miss_bytes),
        );
    }
    out
}

fn parse_recordings(text: &str) -> BTreeMap<String, (u64, u64, u64, u64)> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let policy = parts.next().expect("policy field");
        let mut num = || -> u64 {
            parts
                .next()
                .unwrap_or_else(|| panic!("malformed golden line: {line:?}"))
                .parse()
                .unwrap_or_else(|e| panic!("bad number in {line:?}: {e}"))
        };
        map.insert(policy.to_string(), (num(), num(), num(), num()));
    }
    map
}

#[test]
fn two_shard_ledgers_match_recordings() {
    let actual = compute_all();

    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        let mut text = String::from(
            "# Golden 2-shard aggregate ledgers: <policy> <hits> <misses> <hit_bytes> <miss_bytes>\n\
             # capacity 1<<14 split over 2 shards, TraceCtx seed 5, fixed skewed trace.\n\
             # Regenerate: UPDATE_GOLDEN=1 cargo test -p cdn-sim --test shard_check\n",
        );
        for (policy, (h, m, hb, mb)) in &actual {
            writeln!(text, "{policy} {h} {m} {hb} {mb}").unwrap();
        }
        std::fs::write(data_path(), text).expect("write golden file");
        return;
    }

    let expected = parse_recordings(
        &std::fs::read_to_string(data_path()).expect("golden shard recordings missing"),
    );
    assert_eq!(expected.len(), actual.len(), "policy count drifted");
    let mut diverged = Vec::new();
    for (policy, ledger) in &actual {
        match expected.get(policy) {
            Some(want) if want == ledger => {}
            Some(want) => diverged.push(format!("{policy}: recorded {want:?}, got {ledger:?}")),
            None => diverged.push(format!("{policy}: no recording")),
        }
    }
    assert!(
        diverged.is_empty(),
        "{} sharded ledger(s) diverged:\n{}",
        diverged.len(),
        diverged.join("\n")
    );
}
