//! Property tests for the read-only resident-export seam (DESIGN.md
//! §17): at an arbitrary point in an arbitrary request stream,
//! `for_each_resident` must yield *exactly* the live resident multiset
//! (key, size) — no phantoms, no omissions, no duplicates — and the
//! export must leave the policy structurally intact (its invariant
//! audit still passes, and replay continues unperturbed).
//!
//! Covered families: LRU (`LruQueue`), S4LRU (`SegmentedQueue`), SCIP
//! (learned policy with a ghost-backed queue), and W-TinyLFU (two
//! compartments behind a frequency sketch).

use cdn_cache::{CachePolicy, ObjectId, Request, ResidentEntry};
use cdn_policies::admission::TinyLfu;
use cdn_policies::replacement::{Lru, S4Lru};
use proptest::prelude::*;
use scip::Scip;

fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..120, 1u64..300), 1..400)
}

fn to_trace(pairs: &[(u64, u64)]) -> Vec<Request> {
    pairs
        .iter()
        .enumerate()
        .map(|(tick, &(id, size))| Request {
            tick: tick as u64,
            id: ObjectId(id),
            size,
            wall_secs: 0.0,
        })
        .collect()
}

/// Export the resident set and check it is exactly the live multiset:
/// unique keys, count and byte totals equal to the policy's own ledger,
/// and every exported (key, size) pair answers a probe with a hit on a
/// clone (so each claimed resident really is resident, at its claimed
/// size). Count equality then rules out omissions. Returns the entries
/// for follow-up checks.
fn check_export_exact<P: CachePolicy + Clone>(policy: &P, next_tick: u64) -> Vec<ResidentEntry> {
    let mut entries: Vec<ResidentEntry> = Vec::new();
    let supported = policy.for_each_resident(&mut |e| entries.push(*e));
    assert!(supported, "{}: export unsupported", policy.name());

    let mut ids: Vec<u64> = entries.iter().map(|e| e.id.0).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(
        before,
        ids.len(),
        "{}: duplicate keys in export",
        policy.name()
    );

    let stats = policy.stats();
    assert_eq!(
        entries.len(),
        stats.resident_objects,
        "{}: export count vs resident_objects",
        policy.name()
    );
    let exported_bytes: u64 = entries.iter().map(|e| e.size).sum();
    assert_eq!(
        exported_bytes,
        stats.resident_bytes,
        "{}: export bytes vs resident_bytes",
        policy.name()
    );
    assert_eq!(exported_bytes, policy.used_bytes());

    // Membership probe: a resident object must hit when re-requested at
    // its resident size. Each probe runs on its own clone — in segmented
    // policies a hit can cascade demotions and evict, so probing the
    // same clone twice would perturb later probes. With unique keys and
    // count equality this pins the export to exactly the live multiset.
    for (i, e) in entries.iter().enumerate() {
        let mut probe = policy.clone();
        let kind = probe.on_request(&Request {
            tick: next_tick + i as u64,
            id: e.id,
            size: e.size,
            wall_secs: 0.0,
        });
        assert!(
            kind.is_hit(),
            "{}: exported {:?} (size {}) is not actually resident",
            policy.name(),
            e.id,
            e.size
        );
    }
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At a random cut point of a random stream, each family's export is
    /// exactly its live resident multiset, and the policy still passes
    /// its structural audit afterwards (the seam is truly read-only).
    #[test]
    fn export_is_exact_and_audit_holds(
        pairs in arb_pairs(),
        cut in 0usize..400,
        capacity in 200u64..3_000,
    ) {
        let trace = to_trace(&pairs);
        let cut = cut.min(trace.len());
        let next = trace.len() as u64;

        let mut lru = Lru::new(capacity);
        let mut s4 = S4Lru::new(capacity);
        let mut scip = Scip::new(capacity, 7);
        let mut tiny = TinyLfu::new(capacity);
        for r in &trace[..cut] {
            lru.on_request(r);
            s4.on_request(r);
            scip.on_request(r);
            tiny.on_request(r);
        }

        check_export_exact(&lru, next);
        lru.queue().audit().unwrap();

        check_export_exact(&s4, next);
        s4.queue().audit().unwrap();

        check_export_exact(&scip, next);
        scip.audit().unwrap();

        check_export_exact(&tiny, next);
        tiny.audit().unwrap();
    }

    /// Export order is a restore contract, not just a listing: feeding
    /// the export through `restore_resident` on a fresh policy must
    /// reproduce the identical resident multiset and byte total.
    #[test]
    fn export_restore_roundtrips_the_resident_set(
        pairs in arb_pairs(),
        capacity in 200u64..3_000,
    ) {
        let trace = to_trace(&pairs);
        let next = trace.len() as u64;

        macro_rules! roundtrip {
            ($make:expr) => {{
                let mut warm = $make;
                for r in &trace {
                    warm.on_request(r);
                }
                let entries = check_export_exact(&warm, next);
                let mut fresh = $make;
                prop_assert!(fresh.restore_resident(&entries));
                let restored = check_export_exact(&fresh, next);
                let mut a: Vec<(u64, u64)> =
                    entries.iter().map(|e| (e.id.0, e.size)).collect();
                let mut b: Vec<(u64, u64)> =
                    restored.iter().map(|e| (e.id.0, e.size)).collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "restore changed the resident multiset");
            }};
        }
        roundtrip!(Lru::new(capacity));
        roundtrip!(S4Lru::new(capacity));
        roundtrip!(Scip::new(capacity, 7));
        roundtrip!(TinyLfu::new(capacity));
    }
}
