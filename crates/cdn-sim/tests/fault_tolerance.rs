//! End-to-end recovery proofs under deterministic fault injection.
//!
//! Compile with `--features fault-injection`; without the feature this
//! file is empty. The failpoint registry is process-global, so every
//! test serialises on [`LOCK`] and clears the registry on entry and
//! exit.

#![cfg(feature = "fault-injection")]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use cdn_sim::fault::{self, FaultAction, FaultRule, FP_READ_CHUNK, FP_SWEEP_JOB};
use cdn_sim::{
    job_fingerprint, run_checkpointed, run_jobs, Checkpoint, JobOutcome, RunMeasurement,
    SweepConfig,
};
use cdn_trace::io::{read_binary, read_binary_columns, write_binary};
use cdn_trace::TraceError;

static LOCK: Mutex<()> = Mutex::new(());

/// Serialise on the registry and guarantee a clean slate before/after.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    guard
}

fn measurement(mr: f64) -> RunMeasurement {
    RunMeasurement {
        policy: "LRU".to_string(),
        miss_ratio: mr,
        byte_miss_ratio: mr / 2.0,
        tps: 1e6,
        ns_per_request: 100.0,
        peak_memory_bytes: 1 << 12,
        resident_objects: 8,
        hits: 300,
        misses: 100,
        hit_bytes: 3_000,
        miss_bytes: 1_000,
    }
}

fn no_retry() -> SweepConfig {
    SweepConfig {
        max_attempts: 1,
        backoff: Duration::ZERO,
        strict: false,
    }
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cdn_sim_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Satellite S3: a 50-job sweep with 3 injected panics yields 47 results
/// plus 3 reported failures, and resuming against the checkpoint sidecar
/// re-executes only the 3 failed cells.
#[test]
fn fifty_job_sweep_survives_three_panics_then_resumes_only_the_failures() {
    let _guard = exclusive();
    let path = tmpfile("resume_after_panics.jsonl");
    std::fs::remove_file(&path).ok();

    const FAILING: [u64; 3] = [7, 23, 41];
    let fps: Vec<String> = (0..50)
        .map(|i| job_fingerprint("LRU", i, 0xFEED, 9))
        .collect();
    fn cells<'a>(
        fps: &[String],
        ran: &'a AtomicUsize,
    ) -> Vec<(String, impl FnMut() -> RunMeasurement + Send + 'a)> {
        fps.iter()
            .enumerate()
            .map(|(i, fp)| {
                (fp.clone(), move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    measurement(i as f64 / 100.0)
                })
            })
            .collect()
    }

    // First run: jobs 7, 23 and 41 panic inside the sweep executor.
    fault::arm(
        FP_SWEEP_JOB,
        FaultRule::OnKeys(
            FAILING.to_vec(),
            FaultAction::Panic("injected fault".into()),
        ),
    );
    let ran = AtomicUsize::new(0);
    let checkpoint = Checkpoint::open(&path).unwrap();
    let report = run_checkpointed(cells(&fps, &ran), Some(&checkpoint), &no_retry());
    assert_eq!(report.succeeded(), 47);
    let failures = report.failures();
    assert_eq!(
        failures.iter().map(|(i, _)| *i as u64).collect::<Vec<_>>(),
        FAILING
    );
    for (_, msg) in &failures {
        assert!(msg.contains("injected fault"), "got: {msg}");
    }
    assert_eq!(fault::fired(FP_SWEEP_JOB), 3);
    assert_eq!(checkpoint.len(), 47, "only completed cells checkpointed");
    let values = report.into_values();
    assert_eq!(values.iter().filter(|v| v.is_none()).count(), 3);

    // Resume with the fault gone: exactly the 3 failed cells re-execute.
    fault::clear();
    let ran = AtomicUsize::new(0);
    let checkpoint = Checkpoint::open(&path).unwrap();
    let report = run_checkpointed(cells(&fps, &ran), Some(&checkpoint), &no_retry());
    assert_eq!(ran.load(Ordering::SeqCst), 3);
    assert_eq!(report.cached(), 47);
    assert!(report.failures().is_empty());
    for (i, v) in report.into_values().into_iter().enumerate() {
        let v = v.expect("complete after resume");
        assert!((v.miss_ratio - i as f64 / 100.0).abs() < 1e-12, "cell {i}");
    }
    std::fs::remove_file(&path).ok();
}

/// A fault armed for only the first attempt of each job exercises the
/// bounded-retry path: every job ends up `Retried`, none fail.
#[test]
fn transient_injected_panics_are_retried_to_success() {
    let _guard = exclusive();
    fault::arm(
        FP_SWEEP_JOB,
        FaultRule::FirstAttempts(1, FaultAction::Panic("flaky once".into())),
    );
    let jobs: Vec<_> = (0..5).map(|i| move || i * 10).collect();
    let cfg = SweepConfig {
        max_attempts: 2,
        backoff: Duration::ZERO,
        strict: false,
    };
    let report = run_jobs(jobs, &cfg);
    assert_eq!(report.summary(), "5 jobs: 0 ok, 5 retried, 0 failed");
    for (i, o) in report.outcomes.iter().enumerate() {
        match o {
            JobOutcome::Retried { value, attempts } => {
                assert_eq!(*value, i * 10);
                assert_eq!(*attempts, 2);
            }
            other => panic!("job {i}: expected Retried, got {other:?}"),
        }
    }
    assert_eq!(fault::fired(FP_SWEEP_JOB), 5);
    fault::clear();
}

/// Injected trace-read faults surface as the right structured
/// [`TraceError`] from both readers, and reads heal once disarmed.
#[test]
fn injected_trace_faults_yield_structured_errors_then_heal() {
    let _guard = exclusive();
    let path = tmpfile("faulty_trace.bin");
    let trace = cdn_cache::object::micro_trace(&[(1, 100), (2, 200), (3, 300), (4, 400)]);
    write_binary(&path, &trace).unwrap();

    // Short read: the chunk stops mid-record.
    fault::arm(
        FP_READ_CHUNK,
        FaultRule::OnKeys(vec![0], FaultAction::ShortRead(10)),
    );
    assert!(matches!(
        read_binary(&path).unwrap_err(),
        TraceError::TruncatedMidRecord { .. }
    ));

    // Corrupt byte: the v2 chunk CRC catches the flip, in both readers.
    fault::arm(
        FP_READ_CHUNK,
        FaultRule::OnKeys(vec![0], FaultAction::CorruptByte(17)),
    );
    assert!(matches!(
        read_binary(&path).unwrap_err(),
        TraceError::ChecksumMismatch { chunk: 0, .. }
    ));
    fault::arm(
        FP_READ_CHUNK,
        FaultRule::OnKeys(vec![0], FaultAction::CorruptByte(17)),
    );
    assert!(matches!(
        read_binary_columns(&path).unwrap_err(),
        TraceError::ChecksumMismatch { chunk: 0, .. }
    ));

    // I/O error action maps to TraceError::Io.
    fault::arm(
        FP_READ_CHUNK,
        FaultRule::OnKeys(vec![0], FaultAction::Error("disk vanished".into())),
    );
    assert!(matches!(read_binary(&path).unwrap_err(), TraceError::Io(_)));

    // Disarmed, the same file reads back intact.
    fault::clear();
    assert_eq!(read_binary(&path).unwrap(), trace);
    std::fs::remove_file(&path).ok();
}

/// Strict mode still aborts the sweep when an injected panic survives its
/// retry budget — the pre-existing fail-fast contract is preserved.
#[test]
fn strict_mode_aborts_on_injected_panic() {
    let _guard = exclusive();
    fault::arm(
        FP_SWEEP_JOB,
        FaultRule::OnKeys(vec![1], FaultAction::Panic("fatal".into())),
    );
    let jobs: Vec<_> = (0..3).map(|i| move || i).collect();
    let cfg = SweepConfig {
        max_attempts: 1,
        backoff: Duration::ZERO,
        strict: true,
    };
    let caught = std::panic::catch_unwind(|| run_jobs(jobs, &cfg));
    fault::clear();
    let msg = *caught.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("strict sweep"), "got: {msg}");
}
