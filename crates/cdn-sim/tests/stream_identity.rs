//! Out-of-core replay correctness: chunk boundaries must be invisible.
//!
//! Three guarantees pinned here:
//!
//! 1. **Bit-identity** — for every policy in [`PolicyKind::ALL`]
//!    (Belady included, fed the same full oracle context on both sides),
//!    a chunk-streamed replay produces u64-identical ledgers, identical
//!    peak-metadata samples, and an identical per-request `AccessKind` +
//!    occupancy stream to the in-RAM replay of the same trace, for every
//!    degenerate-corpus entry and several chunk lengths.
//! 2. **No silent partial replay** — flipping any single byte of any v2
//!    chunk on disk surfaces a structured [`TraceError`] from the replay
//!    (property-tested over random offsets), and the policy never
//!    observes a request decoded at or past the corrupt chunk.
//! 3. **Untrusted header count** — a header claiming 2⁴⁰ requests must
//!    stream on per-chunk buffers (no count-sized allocation): every
//!    intact full chunk replays, then the first chunk whose framing
//!    contradicts the claimed count surfaces `ChunkLengthMismatch`.

use std::path::PathBuf;
use std::sync::OnceLock;

use cdn_cache::hash::mix64;
use cdn_cache::{AccessKind, Request};
use cdn_sim::{BatchMode, PolicyKind, TraceCtx};
use cdn_trace::io::write_binary;
use cdn_trace::{
    degenerate_corpus, GeneratorConfig, StreamingTrace, TraceColumns, TraceError, TraceGenerator,
    CHUNK_RECORDS, RECORD_BYTES,
};
use proptest::prelude::*;

const CAPACITY: u64 = 1 << 16;
const SEED: u64 = 5;

/// Cut `cols` into owned chunks of `chunk_len` requests.
fn chunked(cols: &TraceColumns, chunk_len: usize) -> Vec<TraceColumns> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < cols.len() {
        let end = (at + chunk_len).min(cols.len());
        let mut c = TraceColumns::new();
        for i in at..end {
            c.push(cols.get(i));
        }
        out.push(c);
        at = end;
    }
    out
}

fn outcome_code(outcome: AccessKind) -> u64 {
    match outcome {
        AccessKind::Hit => 1,
        AccessKind::Miss => 2,
        AccessKind::Rejected(_) => 3,
    }
}

/// Order-sensitive digest over `(index, outcome, used_bytes)`.
fn fold(h: &mut u64, i: usize, outcome: AccessKind, used: u64) {
    *h = mix64(*h ^ mix64(((i as u64) << 2 | outcome_code(outcome)).wrapping_add(used << 34)));
}

#[test]
fn streamed_replay_is_bit_identical_for_every_policy() {
    let mut diverged = Vec::new();
    for (name, trace) in degenerate_corpus(CAPACITY) {
        let cols = TraceColumns::from_requests(&trace);
        // Full oracle context on BOTH sides so Belady participates; the
        // streamed path itself never needs the trace in RAM.
        let ctx = TraceCtx::new(&trace, SEED);
        for kind in PolicyKind::ALL {
            let in_ram = kind.replay_batched(CAPACITY, &cols, &ctx, BatchMode::Off);
            let mut plain: u64 = 0x9E37_79B9_7F4A_7C15;
            kind.run_with_observer(CAPACITY, &trace, &ctx, |i, _req, outcome, used, _cap| {
                fold(&mut plain, i, outcome, used);
            });
            for chunk_len in [1usize, 257, 4_096] {
                let chunks = chunked(&cols, chunk_len);
                let streamed = kind
                    .replay_stream(
                        CAPACITY,
                        chunks.clone().into_iter().map(Ok::<_, TraceError>),
                        &ctx,
                        BatchMode::Off,
                    )
                    .expect("synthetic stream cannot fail");
                let ledgers_equal = (in_ram.hits, in_ram.misses, in_ram.hit_bytes)
                    == (streamed.hits, streamed.misses, streamed.hit_bytes)
                    && in_ram.miss_bytes == streamed.miss_bytes
                    && in_ram.peak_memory_bytes == streamed.peak_memory_bytes
                    && in_ram.resident_objects == streamed.resident_objects;
                let mut stream_digest: u64 = 0x9E37_79B9_7F4A_7C15;
                kind.run_with_observer_stream(
                    CAPACITY,
                    chunks.into_iter().map(Ok::<_, TraceError>),
                    &ctx,
                    |i, _req, outcome, used, _cap| {
                        fold(&mut stream_digest, i, outcome, used);
                    },
                )
                .expect("synthetic stream cannot fail");
                if !ledgers_equal || stream_digest != plain {
                    diverged.push(format!(
                        "{} on {} at chunk_len {}: ledgers_equal={} digest {:#018x} vs {:#018x}",
                        kind.label(),
                        name,
                        chunk_len,
                        ledgers_equal,
                        stream_digest,
                        plain
                    ));
                }
            }
        }
    }
    assert!(
        diverged.is_empty(),
        "streamed replay diverged from in-RAM replay:\n{}",
        diverged.join("\n")
    );
}

/// The on-disk fixture the corruption proptest flips bytes in: a
/// 2.5-chunk v2 trace, written once per test process.
fn corruption_fixture() -> &'static (PathBuf, Vec<u8>, usize) {
    static FIXTURE: OnceLock<(PathBuf, Vec<u8>, usize)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let requests = CHUNK_RECORDS * 5 / 2;
        let trace = TraceGenerator::generate(GeneratorConfig {
            requests: requests as u64,
            core_objects: 5_000,
            ..GeneratorConfig::default()
        });
        let dir = std::env::temp_dir().join("cdn_sim_stream_identity");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pristine.bin");
        write_binary(&path, &trace).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes, requests)
    })
}

/// v2 layout arithmetic: which chunk does a byte offset fall in, and at
/// which record index does that chunk start?
fn chunk_start_of_offset(offset: usize, total_records: usize) -> usize {
    const HEADER: usize = 16; // magic + version + count
    let mut at = HEADER;
    let mut first_record = 0usize;
    loop {
        let n = (total_records - first_record).min(CHUNK_RECORDS);
        let framed = 4 + n * RECORD_BYTES + 4; // len + payload + crc
        if offset < at + framed {
            return first_record;
        }
        at += framed;
        first_record += n;
        assert!(first_record < total_records, "offset beyond chunk region");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one byte anywhere in the chunk region: the streamed replay
    /// must return a structured error, and no request of the corrupt
    /// chunk (or later) may ever reach the policy.
    #[test]
    fn flipped_byte_surfaces_error_not_partial_replay(
        rel_offset in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        let (_, pristine, total_records) = corruption_fixture();
        const HEADER: usize = 16;
        const FOOTER: usize = 12;
        let chunk_region = pristine.len() - HEADER - FOOTER;
        let offset = HEADER + ((rel_offset * chunk_region as f64) as usize).min(chunk_region - 1);
        let mut corrupted = pristine.clone();
        corrupted[offset] ^= mask;

        let dir = std::env::temp_dir().join("cdn_sim_stream_identity");
        let path = dir.join(format!("corrupt_{offset}_{mask}.bin"));
        std::fs::write(&path, &corrupted).unwrap();

        let safe_records = chunk_start_of_offset(offset, *total_records);
        let ctx = TraceCtx::without_oracle(*total_records as u64, SEED);
        let stream = StreamingTrace::open(&path).unwrap();
        let mut observed = 0usize;
        let result = PolicyKind::Lru.run_with_observer_stream(
            CAPACITY,
            stream,
            &ctx,
            |i, _req, _outcome, _used, _cap| {
                observed = i + 1;
            },
        );
        std::fs::remove_file(&path).ok();
        prop_assert!(result.is_err(), "corruption at {offset} went undetected");
        prop_assert!(
            observed <= safe_records,
            "policy observed {observed} requests but the chunk at record {safe_records} \
             (byte {offset}) was corrupt"
        );
    }
}

#[test]
fn lying_header_count_streams_on_capped_buffers_and_errors_at_footer() {
    let (path, pristine, total_records) = corruption_fixture();
    let mut lying = pristine.clone();
    // Header count lives at bytes 8..16 (LE). Claim 2^40 requests — a
    // reader that sizes any allocation from the header would need 24 TiB.
    let lie: u64 = 1 << 40;
    lying[8..16].copy_from_slice(&lie.to_le_bytes());
    let lying_path = path.with_file_name("lying_count.bin");
    std::fs::write(&lying_path, &lying).unwrap();

    let stream = StreamingTrace::open(&lying_path).unwrap();
    assert_eq!(stream.header_count(), lie as usize, "lie visible in header");
    let ctx = TraceCtx::without_oracle(lie, SEED);
    let mut observed = 0usize;
    let result = PolicyKind::Lru.run_with_observer_stream(
        CAPACITY,
        stream,
        &ctx,
        |i, _req, _outcome, _used, _cap| {
            observed = i + 1;
        },
    );
    std::fs::remove_file(&lying_path).ok();
    // Every intact full chunk replays on a capped scratch buffer (a
    // count-trusting reader would have tried a 24 TiB allocation), then
    // the final partial chunk — whose stored record count contradicts
    // the header's claim of 2^40 remaining — surfaces structurally.
    let full_chunks = (*total_records / CHUNK_RECORDS) * CHUNK_RECORDS;
    assert_eq!(observed, full_chunks, "intact full chunks must replay");
    match result {
        Err(TraceError::ChunkLengthMismatch {
            chunk,
            expected,
            actual,
        }) => {
            assert_eq!(chunk, total_records / CHUNK_RECORDS);
            assert_eq!(expected as usize, CHUNK_RECORDS);
            assert_eq!(actual as usize, total_records - full_chunks);
        }
        other => panic!("expected ChunkLengthMismatch, got {other:?}"),
    }
}

#[test]
fn prefetch_thread_errors_and_panics_propagate_through_replay() {
    // An I/O error mid-stream aborts the replay with that error.
    let trace: Vec<Request> = TraceGenerator::generate(GeneratorConfig {
        requests: 2_000,
        core_objects: 300,
        ..GeneratorConfig::default()
    });
    let cols = TraceColumns::from_requests(&trace);
    let good = chunked(&cols, 512);
    let chunks: Vec<Result<TraceColumns, TraceError>> = good
        .into_iter()
        .map(Ok)
        .take(2)
        .chain(std::iter::once(Err(TraceError::Io(std::io::Error::other(
            "disk pulled",
        )))))
        .collect();
    let ctx = TraceCtx::without_oracle(trace.len() as u64, SEED);
    let stream = StreamingTrace::spawn(chunks.into_iter());
    let err = PolicyKind::Lru
        .replay_stream(CAPACITY, stream, &ctx, BatchMode::Off)
        .expect_err("mid-stream I/O error must abort the replay");
    assert!(matches!(err, TraceError::Io(_)), "got {err:?}");

    // A panicking reader thread surfaces as an error, not a short stream.
    struct PanicAfter {
        left: usize,
        cols: TraceColumns,
    }
    impl Iterator for PanicAfter {
        type Item = Result<TraceColumns, TraceError>;
        fn next(&mut self) -> Option<Self::Item> {
            if self.left == 0 {
                panic!("reader thread lost its mind");
            }
            self.left -= 1;
            Some(Ok(self.cols.clone()))
        }
    }
    let stream = StreamingTrace::spawn(PanicAfter {
        left: 2,
        cols: TraceColumns::from_requests(&trace[..100]),
    });
    let err = PolicyKind::Lru
        .replay_stream(CAPACITY, stream, &ctx, BatchMode::Off)
        .expect_err("reader panic must abort the replay");
    let msg = err.to_string();
    assert!(msg.contains("panicked"), "error must name the panic: {msg}");
}
