//! End-to-end determinism and degradation checks for the `fig6_chaos`
//! study (small scale; the binary runs the full-size version).

use cdn_sim::experiments::fig6_chaos;

#[test]
fn fig6_chaos_is_deterministic_and_calm_is_clean() {
    let a = fig6_chaos(20_000, 7);
    let b = fig6_chaos(20_000, 7);

    // Two same-seed runs produce byte-identical JSON (and markdown).
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_markdown(), b.to_markdown());

    // The no-overhead gate: calm replay is bit-identical to the plain
    // path and serves everything.
    assert!(a.calm_matches_plain);
    assert!(a.calm_fully_available());
    for c in a.cells.iter().filter(|c| c.schedule == "calm") {
        assert_eq!(c.counters.failures, 0);
        assert_eq!(c.counters.stale_serves, 0);
        assert_eq!(c.counters.breaker_trips, 0);
        assert_eq!(c.counters.retries, 0);
        assert_eq!(c.counters.coalesced, 0);
    }

    // The brownout bites: open-circuit intervals, stale serves and an
    // availability dip, deterministically.
    let brown = a
        .cells
        .iter()
        .find(|c| c.schedule == "origin-brownout" && c.scip)
        .unwrap();
    assert!(brown.counters.breaker_trips > 0, "{:?}", brown.counters);
    assert!(brown.counters.stale_serves > 0, "{:?}", brown.counters);
    assert!(brown.availability < 1.0);
    assert!(brown.availability > 0.8, "graceful, not catastrophic");

    // OC churn fails over without losing a single request: the origin
    // stays up, so crashes only shift traffic deeper.
    let churn = a
        .cells
        .iter()
        .find(|c| c.schedule == "oc-churn" && c.scip)
        .unwrap();
    assert!(churn.counters.failovers > 0, "{:?}", churn.counters);
    assert!(churn.counters.node_resets > 0);
    assert_eq!(churn.availability, 1.0, "{:?}", churn.counters);

    // A distinct seed yields a different study (the schedules moved).
    let c = fig6_chaos(20_000, 8);
    assert_ne!(a.to_json(), c.to_json());
}
