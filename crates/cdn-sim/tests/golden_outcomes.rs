//! Golden `AccessKind`-stream recordings for every policy over the
//! degenerate corpus.
//!
//! Each (policy × trace) pair's per-request outcome stream is folded into
//! a 64-bit rolling hash and compared against the committed recording in
//! `tests/data/golden_outcomes_v1.txt`. The recordings were captured
//! *before* the fused-index / hot-cold SoA refactor of the core
//! structures, so a pass here proves the ported `LruQueue` / `GhostList` /
//! `SegmentedQueue` (and every policy built on them) produce bit-identical
//! behaviour — not just "no panics".
//!
//! Regenerate (only when an intentional behaviour change lands) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cdn-sim --test golden_outcomes
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use cdn_cache::hash::mix64;
use cdn_cache::AccessKind;
use cdn_sim::{PolicyKind, TraceCtx};
use cdn_trace::degenerate_corpus;

/// Same capacity + seed as `model_check::all_policies_survive_degenerate_corpus`.
const CAPACITY: u64 = 1 << 16;
const SEED: u64 = 5;

fn outcome_code(outcome: AccessKind) -> u64 {
    match outcome {
        AccessKind::Hit => 1,
        AccessKind::Miss => 2,
        AccessKind::Rejected(_) => 3,
    }
}

/// Order-sensitive rolling hash of the outcome stream. Folding the request
/// index in with the code means a transposition (hit@i, miss@j swapped
/// with miss@i, hit@j) changes the digest even though the multiset of
/// outcomes is identical.
fn stream_digest(kind: PolicyKind, trace: &[cdn_cache::Request], ctx: &TraceCtx) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    kind.run_with_observer(CAPACITY, trace, ctx, |i, _req, outcome, _used, _cap| {
        h = mix64(h ^ mix64((i as u64) << 2 | outcome_code(outcome)));
    });
    h
}

fn data_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("golden_outcomes_v1.txt")
}

fn parse_recordings(text: &str) -> BTreeMap<(String, String), u64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(policy), Some(trace), Some(hash)) = (parts.next(), parts.next(), parts.next())
        else {
            panic!("malformed golden line: {line:?}");
        };
        let hash = u64::from_str_radix(hash.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad hash in golden line {line:?}: {e}"));
        map.insert((policy.to_string(), trace.to_string()), hash);
    }
    map
}

fn compute_all() -> BTreeMap<(String, String), u64> {
    let mut out = BTreeMap::new();
    for (name, trace) in degenerate_corpus(CAPACITY) {
        let ctx = TraceCtx::new(&trace, SEED);
        for kind in PolicyKind::ALL {
            let digest = stream_digest(kind, &trace, &ctx);
            out.insert((kind.label().to_string(), name.to_string()), digest);
        }
    }
    out
}

#[test]
fn outcome_streams_match_pre_refactor_recordings() {
    let actual = compute_all();

    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        let mut text = String::from(
            "# Golden AccessKind-stream digests: <policy> <trace> <hash>\n\
             # capacity 1<<16, TraceCtx seed 5, degenerate_corpus.\n\
             # Regenerate: UPDATE_GOLDEN=1 cargo test -p cdn-sim --test golden_outcomes\n",
        );
        for ((policy, trace), hash) in &actual {
            writeln!(text, "{policy} {trace} {hash:#018x}").unwrap();
        }
        std::fs::write(data_path(), text).expect("write golden file");
        return;
    }

    let expected = parse_recordings(
        &std::fs::read_to_string(data_path()).expect("golden recordings file missing"),
    );
    assert_eq!(
        expected.len(),
        actual.len(),
        "recording count mismatch: expected {} (policy × trace) pairs, computed {}",
        expected.len(),
        actual.len()
    );
    let mut diverged = Vec::new();
    for (key, digest) in &actual {
        match expected.get(key) {
            Some(want) if want == digest => {}
            Some(want) => diverged.push(format!(
                "{} on {}: recorded {want:#018x}, got {digest:#018x}",
                key.0, key.1
            )),
            None => diverged.push(format!("{} on {}: no recording", key.0, key.1)),
        }
    }
    assert!(
        diverged.is_empty(),
        "{} outcome stream(s) diverged from pre-refactor recordings:\n{}",
        diverged.len(),
        diverged.join("\n")
    );
}
