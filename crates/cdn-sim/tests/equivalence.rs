//! Equivalence property tests for the replay engine: the monomorphized
//! fast path, the `dyn CachePolicy` reference path, and the SoA-columns
//! path must be bit-identical — same `MissRatio` counters and the same
//! `MetricsRecorder` interval snapshots — on random traces, for a
//! representative policy slice (LRU, DIP, TinyLFU, SCIP).

use cdn_cache::{CachePolicy, MissRatio, Request};
use cdn_policies::admission::TinyLfu;
use cdn_policies::insertion::{Dip, InsertionCache};
use cdn_policies::replacement::Lru;
use cdn_policies::{
    replay, replay_columns, replay_dyn, replay_with_recorder, replay_with_recorder_dyn,
};
use cdn_trace::TraceColumns;
use proptest::prelude::*;
use scip::Scip;

fn arb_trace() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec((0u64..120, 1u64..500), 1..600).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(t, (id, size))| Request::new(t as u64, id, size))
            .collect()
    })
}

fn assert_same_totals(label: &str, a: &MissRatio, b: &MissRatio) {
    assert_eq!(a.requests(), b.requests(), "{label}: requests diverge");
    assert_eq!(a.hits(), b.hits(), "{label}: hits diverge");
    assert_eq!(a.misses(), b.misses(), "{label}: misses diverge");
    assert_eq!(
        a.miss_bytes(),
        b.miss_bytes(),
        "{label}: miss bytes diverge"
    );
}

/// `fast` replays through the statically-dispatched generic (`P` is the
/// concrete policy type, as in the sweep fast path); `slow` is the same
/// initial state behind `&mut dyn CachePolicy`. All three replay flavours
/// must agree exactly.
fn check_one<P: CachePolicy + Clone>(fast: P, trace: &[Request], interval: u64) {
    let label = fast.name().to_string();
    let columns = TraceColumns::from_requests(trace);

    let mut mono = fast.clone();
    let mut cols = fast.clone();
    let mut boxed: Box<dyn CachePolicy> = Box::new(fast.clone());
    let a = replay(&mut mono, trace);
    let b = replay_dyn(boxed.as_mut(), trace);
    let c = replay_columns(&mut cols, &columns);
    assert_same_totals(&label, &a, &b);
    assert_same_totals(&label, &a, &c);

    let mut mono_rec = fast.clone();
    let mut boxed_rec: Box<dyn CachePolicy> = Box::new(fast);
    let ra = replay_with_recorder(&mut mono_rec, trace, interval);
    let rb = replay_with_recorder_dyn(boxed_rec.as_mut(), trace, interval);
    assert_same_totals(&label, ra.totals(), rb.totals());
    assert_eq!(
        ra.snapshots(),
        rb.snapshots(),
        "{label}: interval snapshots diverge"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monomorphized, `dyn`, SoA-columns and recorder replays all agree
    /// exactly across the policy slice on random traces.
    #[test]
    fn replay_paths_identical(trace in arb_trace(), capacity in 200u64..4000, interval in 1u64..64) {
        check_one(Lru::new(capacity), &trace, interval);
        check_one(InsertionCache::new(Dip::new(1), capacity, "DIP"), &trace, interval);
        check_one(TinyLfu::new(capacity), &trace, interval);
        check_one(Scip::new(capacity, 7), &trace, interval);
    }
}
