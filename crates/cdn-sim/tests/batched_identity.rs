//! Prefetch hints are advisory: the software-pipelined replay loop must
//! produce the exact same `AccessKind` stream (and occupancy trajectory)
//! as the straight loop, for every policy over the degenerate corpus.
//!
//! This is the batching analogue of `golden_outcomes`: instead of pinning
//! digests to a file, it pins the batched loop to the unbatched one —
//! if a policy ever lets `prefetch_hint`/`prefetch_batch` mutate state,
//! this fails with the first diverging request index.

use cdn_cache::hash::mix64;
use cdn_cache::AccessKind;
use cdn_sim::{PolicyKind, TraceCtx, AUTO_PREFETCH_DIST};
use cdn_trace::degenerate_corpus;

/// Same capacity + seed as `golden_outcomes` and `model_check`.
const CAPACITY: u64 = 1 << 16;
const SEED: u64 = 5;

fn outcome_code(outcome: AccessKind) -> u64 {
    match outcome {
        AccessKind::Hit => 1,
        AccessKind::Miss => 2,
        AccessKind::Rejected(_) => 3,
    }
}

/// Order-sensitive digest over `(index, outcome, used_bytes)` — folding
/// occupancy in catches a hint that perturbs eviction accounting even if
/// the outcome stream happens to survive.
fn fold(h: &mut u64, i: usize, outcome: AccessKind, used: u64) {
    *h = mix64(*h ^ mix64(((i as u64) << 2 | outcome_code(outcome)).wrapping_add(used << 34)));
}

#[test]
fn pipelined_loop_is_bit_identical_to_straight_loop() {
    let mut diverged = Vec::new();
    for (name, trace) in degenerate_corpus(CAPACITY) {
        let ctx = TraceCtx::new(&trace, SEED);
        for kind in PolicyKind::ALL {
            let mut plain: u64 = 0x9E37_79B9_7F4A_7C15;
            kind.run_with_observer(CAPACITY, &trace, &ctx, |i, _req, outcome, used, _cap| {
                fold(&mut plain, i, outcome, used);
            });
            for depth in [1usize, AUTO_PREFETCH_DIST, 64] {
                let mut batched: u64 = 0x9E37_79B9_7F4A_7C15;
                kind.run_with_observer_batched(
                    CAPACITY,
                    &trace,
                    &ctx,
                    depth,
                    |i, _req, outcome, used, _cap| {
                        fold(&mut batched, i, outcome, used);
                    },
                );
                if batched != plain {
                    diverged.push(format!(
                        "{} on {} at lookahead {}: {batched:#018x} != {plain:#018x}",
                        kind.label(),
                        name,
                        depth
                    ));
                }
            }
        }
    }
    assert!(
        diverged.is_empty(),
        "{} policy × trace × depth combination(s) diverged under pipelining:\n{}",
        diverged.len(),
        diverged.join("\n")
    );
}
