//! One function per paper table/figure. Each returns [`Table`]s that the
//! `fig*` binaries print and persist under `results/`.

use std::sync::Arc;

use cdn_cache::{FxHashMap, ObjectId, Request};
use cdn_learning::{
    accuracy, Classifier, ContextualBandit, Dataset, Gbdt, GbdtParams, LinReg, LogReg, Mlp,
    Normalizer,
};
use cdn_trace::label::{label_trace, oracle_replay, OracleTreatment, RequestLabel};
use cdn_trace::{TraceGenerator, TraceStats, Workload};

use cdn_learning::LearnError;

use crate::checkpoint::{run_checkpointed, Checkpoint};
use crate::runner::{run_policy, PolicyKind, RunMeasurement, TraceCtx};
use crate::sweep::{parallel_runs, SweepConfig, SweepReport};
use crate::table::{mb, pct, Table, TableError};

/// Anything that can go wrong while building an experiment table.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// Table shape violation (ragged row).
    Table(TableError),
    /// Dataset/metric failure in a learning experiment.
    Learn(LearnError),
}

impl From<TableError> for ExperimentError {
    fn from(e: TableError) -> Self {
        ExperimentError::Table(e)
    }
}

impl From<LearnError> for ExperimentError {
    fn from(e: LearnError) -> Self {
        ExperimentError::Learn(e)
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Table(e) => write!(f, "table error: {e}"),
            ExperimentError::Learn(e) => write!(f, "learning error: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Shared experiment inputs: one generated trace per workload.
pub struct Bench {
    /// (workload, trace, stats) triples in paper order.
    pub traces: Vec<(Workload, Arc<Vec<Request>>, TraceStats)>,
    /// Requests per trace.
    pub requests: u64,
    /// Master seed.
    pub seed: u64,
}

impl Bench {
    /// Generate all three workloads at the configured scale.
    pub fn generate(requests: u64, seed: u64) -> Self {
        let traces = Workload::ALL
            .iter()
            .map(|&w| {
                let trace = TraceGenerator::generate(w.profile().config(requests, seed));
                let stats = TraceStats::compute(&trace);
                (w, Arc::new(trace), stats)
            })
            .collect();
        Bench {
            traces,
            requests,
            seed,
        }
    }

    /// Default scale from the environment.
    pub fn default_scale() -> Self {
        Self::generate(crate::default_requests(), crate::default_seed())
    }

    /// The paper's Figure-8 cache points (64/128/256 GB) as WSS fractions
    /// per workload, converted to bytes for our scaled traces.
    pub fn paper_cache_bytes(&self, w: Workload, stats: &TraceStats, gb: f64) -> u64 {
        stats.cache_bytes_for_fraction(w.paper_cache_fraction(gb))
    }
}

/// Table 1: workload summary statistics.
pub fn table1(bench: &Bench) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Table 1 — summary of workloads",
        &["metric", "CDN-T", "CDN-W", "CDN-A"],
    );
    let s: Vec<&TraceStats> = bench.traces.iter().map(|(_, _, s)| s).collect();
    let fmt =
        |f: &dyn Fn(&TraceStats) -> String| -> Vec<String> { s.iter().map(|st| f(st)).collect() };
    type StatRow<'a> = (&'a str, Box<dyn Fn(&TraceStats) -> String>);
    let rows: Vec<StatRow> = vec![
        (
            "Total Requests (K)",
            Box::new(|s: &TraceStats| format!("{:.1}", s.total_requests as f64 / 1e3)),
        ),
        (
            "Unique Objects (K)",
            Box::new(|s: &TraceStats| format!("{:.1}", s.unique_objects as f64 / 1e3)),
        ),
        (
            "Requests / Unique",
            Box::new(|s: &TraceStats| format!("{:.2}", s.requests_per_object())),
        ),
        (
            "Max Object Size (MB)",
            Box::new(|s: &TraceStats| format!("{:.2}", s.max_size as f64 / 1e6)),
        ),
        (
            "Min Object Size (B)",
            Box::new(|s: &TraceStats| format!("{}", s.min_size)),
        ),
        (
            "Mean Object Size (KB)",
            Box::new(|s: &TraceStats| format!("{:.2}", s.mean_size_bytes() / 1024.0)),
        ),
        (
            "Working Set Size (GB)",
            Box::new(|s: &TraceStats| format!("{:.2}", s.wss_gb())),
        ),
    ];
    for (name, f) in rows {
        let mut cells = vec![name.to_string()];
        cells.extend(fmt(&*f));
        t.row(cells)?;
    }
    Ok(t)
}

/// Figure 1: ZRO/A-ZRO/P-ZRO/A-P-ZRO percentages and achievable miss-ratio
/// reductions under LRU at cache sizes A-D (0.5/1/5/10 % of the WSS).
pub fn fig1(bench: &Bench) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Figure 1 — ZRO / P-ZRO structure under LRU (cache = fraction of WSS X)",
        &[
            "workload",
            "cache",
            "ZRO/miss",
            "A-ZRO/ZRO",
            "P-ZRO/hit",
            "A-P-ZRO/P-ZRO",
            "LRU mr",
            "mr|ZRO@LRU",
            "mr|PZRO@LRU",
            "mr|both@LRU",
        ],
    );
    let fractions = [
        ("0.5%X", 0.005),
        ("1%X", 0.01),
        ("5%X", 0.05),
        ("10%X", 0.1),
    ];
    let jobs: Vec<_> = bench
        .traces
        .iter()
        .flat_map(|(w, trace, stats)| {
            fractions.iter().map(move |&(label, f)| {
                let trace = trace.clone();
                let cap = stats.cache_bytes_for_fraction(f);
                let w = *w;
                move || {
                    let labels = label_trace(&trace, cap);
                    let s = labels.summary;
                    let zro = oracle_replay(&trace, &labels, cap, OracleTreatment::Zro, 1.0);
                    let pz = oracle_replay(&trace, &labels, cap, OracleTreatment::PZro, 1.0);
                    let both = oracle_replay(&trace, &labels, cap, OracleTreatment::Both, 1.0);
                    vec![
                        w.name().to_string(),
                        label.to_string(),
                        pct(s.zro_of_misses()),
                        pct(s.azro_of_zros()),
                        pct(s.pzro_of_hits()),
                        pct(s.apzro_of_pzros()),
                        pct(s.miss_ratio()),
                        pct(zro),
                        pct(pz),
                        pct(both),
                    ]
                }
            })
        })
        .collect();
    for row in parallel_runs(jobs) {
        t.row(row)?;
    }
    Ok(t)
}

/// Figure 3: miss ratio when the first x % of labeled ZROs / P-ZROs / both
/// are placed at the LRU position (LRU replay, 1 % of WSS cache).
pub fn fig3(bench: &Bench) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Figure 3 — theoretical miss ratio vs fraction of treated objects (cache = 1%X)",
        &["workload", "treated%", "ZRO@LRU", "P-ZRO@LRU", "both@LRU"],
    );
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    let jobs: Vec<_> = bench
        .traces
        .iter()
        .map(|(w, trace, stats)| {
            let trace = trace.clone();
            let cap = stats.cache_bytes_for_fraction(0.01);
            let w = *w;
            move || {
                let labels = label_trace(&trace, cap);
                let mut rows = Vec::new();
                for &f in &fractions {
                    let z = oracle_replay(&trace, &labels, cap, OracleTreatment::Zro, f);
                    let p = oracle_replay(&trace, &labels, cap, OracleTreatment::PZro, f);
                    let b = oracle_replay(&trace, &labels, cap, OracleTreatment::Both, f);
                    rows.push(vec![
                        w.name().to_string(),
                        format!("{:.0}%", f * 100.0),
                        pct(z),
                        pct(p),
                        pct(b),
                    ]);
                }
                rows
            }
        })
        .collect();
    for rows in parallel_runs(jobs) {
        for row in rows {
            t.row(row)?;
        }
    }
    Ok(t)
}

/// Build the Figure-4 classification datasets from a labeled replay:
/// online features (log size, log frequency-so-far, log recency gap) and
/// three tasks (ZRO on misses, P-ZRO on hits, both on all requests).
fn fig4_datasets(trace: &[Request], cache_bytes: u64) -> Result<[Dataset; 3], LearnError> {
    let labels = label_trace(trace, cache_bytes);
    let mut freq: FxHashMap<ObjectId, (u32, u64)> = FxHashMap::default();
    let mut zro_ds = Dataset::new();
    let mut pzro_ds = Dataset::new();
    let mut both_ds = Dataset::new();
    for r in trace {
        let entry = freq.entry(r.id).or_insert((0, r.tick));
        let gap = r.tick.saturating_sub(entry.1) as f64;
        let feats = vec![
            (r.size.max(1) as f64).ln(),
            (entry.0 as f64 + 1.0).ln(),
            (gap + 1.0).ln(),
        ];
        entry.0 = entry.0.saturating_add(1);
        entry.1 = r.tick;
        match labels.labels[r.tick as usize] {
            RequestLabel::MissReused => {
                zro_ds.push(feats.clone(), 0.0)?;
                both_ds.push(feats, 0.0)?;
            }
            RequestLabel::MissZro { .. } => {
                zro_ds.push(feats.clone(), 1.0)?;
                both_ds.push(feats, 1.0)?;
            }
            RequestLabel::HitReused => {
                pzro_ds.push(feats.clone(), 0.0)?;
                both_ds.push(feats, 0.0)?;
            }
            RequestLabel::HitPZro { .. } => {
                pzro_ds.push(feats.clone(), 1.0)?;
                both_ds.push(feats, 1.0)?;
            }
            RequestLabel::Inadmissible => {}
        }
    }
    Ok([zro_ds, pzro_ds, both_ds])
}

fn eval_model(name: &str, ds: &Dataset, seed: u64) -> Result<(String, f64), LearnError> {
    let (train_raw, test_raw) = ds.temporal_split(0.7)?;
    if train_raw.is_empty() || test_raw.is_empty() {
        return Ok((name.to_string(), f64::NAN));
    }
    let mut rng = cdn_cache::SimRng::new(seed);
    // Balance both splits so 50 % accuracy = chance, as a "decision
    // accuracy" comparison requires.
    let mut train = train_raw.balanced(&mut rng);
    let test = test_raw.balanced(&mut rng);
    if train.is_empty() || test.is_empty() {
        return Ok((name.to_string(), f64::NAN));
    }
    const CAP: usize = 30_000;
    if train.len() > CAP {
        train.x.truncate(CAP);
        train.y.truncate(CAP);
    }
    let norm = Normalizer::fit(&train.x)?;
    let mut train_x = train.x.clone();
    norm.apply_all(&mut train_x);
    let mut test_x = test.x.clone();
    norm.apply_all(&mut test_x);

    let dim = train.dim();
    let mut model: Box<dyn Classifier> = match name {
        "LinReg" => Box::new(LinReg::new(dim)),
        "LogReg" => Box::new(LogReg::new(dim)),
        "SVM" => Box::new(cdn_learning::LinearSvm::new(dim)),
        "NN" => Box::new(Mlp::new(dim)),
        "GBM" => Box::new(Gbdt::new(GbdtParams::default())),
        "MAB" => Box::new(ContextualBandit::new(8)),
        other => panic!("unknown model {other}"),
    };
    model.fit(&train_x, &train.y);
    let acc = accuracy(&test_x, &test.y, |row| model.predict_score(row))?;
    Ok((name.to_string(), acc))
}

/// Figure 4: decision accuracy of six model families on ZRO, P-ZRO and
/// combined identification (cache = 1 % of WSS).
pub fn fig4(bench: &Bench) -> Result<Table, ExperimentError> {
    let mut t = Table::new(
        "Figure 4 — decision accuracy identifying ZRO / P-ZRO / both (balanced test sets)",
        &[
            "workload", "task", "LinReg", "LogReg", "SVM", "NN", "GBM", "MAB",
        ],
    );
    const MODELS: [&str; 6] = ["LinReg", "LogReg", "SVM", "NN", "GBM", "MAB"];
    let jobs: Vec<_> = bench
        .traces
        .iter()
        .map(|(w, trace, stats)| {
            let trace = trace.clone();
            let cap = stats.cache_bytes_for_fraction(0.01);
            let w = *w;
            let seed = bench.seed;
            move || -> Result<Vec<Vec<String>>, LearnError> {
                let datasets = fig4_datasets(&trace, cap)?;
                let tasks = ["ZRO", "P-ZRO", "both"];
                let mut rows = Vec::new();
                for (task, ds) in tasks.iter().zip(&datasets) {
                    let mut cells = vec![w.name().to_string(), task.to_string()];
                    for m in MODELS {
                        let (_, acc) = eval_model(m, ds, seed)?;
                        cells.push(if acc.is_nan() {
                            "n/a".to_string()
                        } else {
                            pct(acc)
                        });
                    }
                    rows.push(cells);
                }
                Ok(rows)
            }
        })
        .collect();
    for rows in parallel_runs(jobs) {
        for row in rows? {
            t.row(row)?;
        }
    }
    Ok(t)
}

/// Figure 6: the TDC deployment study (BTO bandwidth/ratio and latency,
/// before vs after SCIP).
pub fn fig6(bench: &Bench) -> Result<(Table, Table), ExperimentError> {
    // Use the CDN-T analog (TDC's own traffic).
    let (w, trace, stats) = &bench.traces[0];
    assert_eq!(*w, Workload::CdnT);
    let span = trace.last().map(|r| r.wall_secs).unwrap_or(1.0);
    let cfg = tdc::DeploymentConfig {
        tdc: tdc::TdcConfig {
            oc_nodes: 4,
            oc_capacity: stats.cache_bytes_for_fraction(0.01),
            dc_capacity: stats.cache_bytes_for_fraction(0.05),
            deploy_at: u64::MAX,
            seed: bench.seed,
        },
        latency: tdc::LatencyModel::default(),
        deploy_fraction: 0.5,
        bucket_secs: (span / 48.0).max(1e-6),
    };
    let report = tdc::run_deployment(trace, cfg);

    let mut series = Table::new(
        "Figure 6 — TDC timeline (SCIP deploys mid-run)",
        &["bucket", "start_s", "BTO-Gbps", "BTO-ratio", "latency_ms"],
    );
    for (i, b) in report.buckets.iter().enumerate() {
        series.row(vec![
            i.to_string(),
            format!("{:.0}", b.start_secs),
            format!("{:.3}", b.bto_gbps(report.bucket_secs)),
            pct(b.bto_ratio()),
            format!("{:.1}", b.mean_latency_ms()),
        ])?;
    }

    let mut summary = Table::new(
        "Figure 6 — before/after SCIP deployment (paper: 8.87%→6.59%, −25.7% BTO, −26.1% latency)",
        &["metric", "before", "after", "change"],
    );
    let rel = |b: f64, a: f64| format!("{:+.1}%", (a - b) / b.max(1e-12) * 100.0);
    summary.row(vec![
        "BTO ratio".into(),
        pct(report.before.bto_ratio),
        pct(report.after.bto_ratio),
        rel(report.before.bto_ratio, report.after.bto_ratio),
    ])?;
    summary.row(vec![
        "BTO bandwidth (Gbps)".into(),
        format!("{:.3}", report.before.bto_gbps),
        format!("{:.3}", report.after.bto_gbps),
        rel(report.before.bto_gbps, report.after.bto_gbps),
    ])?;
    summary.row(vec![
        "mean latency (ms)".into(),
        format!("{:.1}", report.before.mean_latency_ms),
        format!("{:.1}", report.after.mean_latency_ms),
        rel(report.before.mean_latency_ms, report.after.mean_latency_ms),
    ])?;
    Ok((summary, series))
}

/// Wall-clock span chaos replays dilate their trace to. Generated traces
/// compress a diurnal cycle into a few seconds; resilience budgets
/// (timeouts, breaker cooldowns) are wall-time, so fault windows must
/// last long enough — seconds to tens of seconds — to bite.
const CHAOS_SPAN_SECS: f64 = 600.0;

/// One `(schedule × SCIP arm)` cell of the Figure 6 chaos study —
/// whole-timeline aggregates plus the resilience event counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Fault schedule name (`calm`, `origin-brownout`, `oc-churn`).
    pub schedule: String,
    /// Whether SCIP was deployed (from tick 0) or LRU ran throughout.
    pub scip: bool,
    /// Whole-timeline BTO (miss) ratio.
    pub bto_ratio: f64,
    /// Whole-timeline mean BTO bandwidth, Gbps.
    pub bto_gbps: f64,
    /// Fraction of requests answered (fresh or stale).
    pub availability: f64,
    /// Mean user latency, ms.
    pub mean_latency_ms: f64,
    /// Median user latency, ms.
    pub p50_ms: f64,
    /// Tail latencies, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
    /// Degradation/recovery event counts.
    pub counters: tdc::ResilienceCounters,
}

/// Output of [`fig6_chaos`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosStudy {
    /// One cell per `(schedule, scip)` arm, in a fixed order.
    pub cells: Vec<ChaosCell>,
    /// Whether the calm resilient replay was bit-identical to the plain
    /// serving path (buckets and latency histograms) — the no-overhead
    /// gate the `fig6_chaos` binary enforces.
    pub calm_matches_plain: bool,
    /// Requests replayed.
    pub requests: u64,
    /// Seed of the trace and every schedule.
    pub seed: u64,
}

impl ChaosStudy {
    /// All calm arms served every request.
    pub fn calm_fully_available(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.schedule == "calm")
            .all(|c| c.availability == 1.0)
    }

    /// Render as a [`Table`].
    pub fn table(&self) -> Result<Table, TableError> {
        let mut t = Table::new(
            "Figure 6 under chaos — SCIP vs LRU across fault schedules",
            &[
                "schedule",
                "policy",
                "BTO-ratio",
                "BTO-Gbps",
                "avail",
                "mean_ms",
                "p50_ms",
                "p99_ms",
                "p999_ms",
                "stale",
                "trips",
                "failovers",
                "coalesced",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.schedule.clone(),
                if c.scip { "SCIP" } else { "LRU" }.into(),
                pct(c.bto_ratio),
                format!("{:.3}", c.bto_gbps),
                pct(c.availability),
                format!("{:.1}", c.mean_latency_ms),
                format!("{:.1}", c.p50_ms),
                format!("{:.1}", c.p99_ms),
                format!("{:.1}", c.p999_ms),
                c.counters.stale_serves.to_string(),
                c.counters.breaker_trips.to_string(),
                c.counters.failovers.to_string(),
                c.counters.coalesced.to_string(),
            ])?;
        }
        Ok(t)
    }

    /// Render as a GitHub-flavored markdown document.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str("# Figure 6 under chaos\n\n");
        s.push_str(&format!(
            "{} requests, seed {}, trace dilated to a {:.0} s span. \
             Calm replay bit-identical to the plain path: **{}**.\n\n",
            self.requests, self.seed, CHAOS_SPAN_SECS, self.calm_matches_plain
        ));
        s.push_str(
            "| schedule | policy | BTO ratio | BTO Gbps | availability | mean ms | p50 | p99 | p99.9 | stale | trips | failovers | coalesced |\n\
             |---|---|---|---|---|---|---|---|---|---|---|---|---|\n",
        );
        for c in &self.cells {
            s.push_str(&format!(
                "| {} | {} | {} | {:.3} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {} | {} | {} | {} |\n",
                c.schedule,
                if c.scip { "SCIP" } else { "LRU" },
                pct(c.bto_ratio),
                c.bto_gbps,
                pct(c.availability),
                c.mean_latency_ms,
                c.p50_ms,
                c.p99_ms,
                c.p999_ms,
                c.counters.stale_serves,
                c.counters.breaker_trips,
                c.counters.failovers,
                c.counters.coalesced,
            ));
        }
        s
    }

    /// Deterministic JSON: same study → byte-identical output (floats use
    /// Rust's shortest-roundtrip `Display`, key order is fixed).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"calm_matches_plain\": {},\n",
            self.calm_matches_plain
        ));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let k = &c.counters;
            s.push_str(&format!(
                "    {{\"schedule\": \"{}\", \"scip\": {}, \"bto_ratio\": {}, \"bto_gbps\": {}, \
                 \"availability\": {}, \"mean_latency_ms\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"p999_ms\": {}, \"counters\": {{\"retries\": {}, \"timeouts\": {}, \"hedges\": {}, \
                 \"hedge_wins\": {}, \"stale_serves\": {}, \"failures\": {}, \"coalesced\": {}, \
                 \"origin_fetches\": {}, \"breaker_trips\": {}, \"breaker_fast_fails\": {}, \
                 \"failovers\": {}, \"node_resets\": {}}}}}{}\n",
                c.schedule,
                c.scip,
                c.bto_ratio,
                c.bto_gbps,
                c.availability,
                c.mean_latency_ms,
                c.p50_ms,
                c.p99_ms,
                c.p999_ms,
                k.retries,
                k.timeouts,
                k.hedges,
                k.hedge_wins,
                k.stale_serves,
                k.failures,
                k.coalesced,
                k.origin_fetches,
                k.breaker_trips,
                k.breaker_fast_fails,
                k.failovers,
                k.node_resets,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Whole-timeline aggregates of a deployment report.
fn chaos_cell(schedule: &str, scip: bool, report: &tdc::DeploymentReport) -> ChaosCell {
    let requests: u64 = report.buckets.iter().map(|b| b.requests).sum();
    let bto: u64 = report.buckets.iter().map(|b| b.bto_requests).sum();
    let bytes: u64 = report.buckets.iter().map(|b| b.bto_bytes).sum();
    let lat: f64 = report.buckets.iter().map(|b| b.latency_sum_ms).sum();
    let span = report.buckets.len() as f64 * report.bucket_secs;
    let mut hist = report.hist_before.clone();
    hist.merge(&report.hist_after);
    ChaosCell {
        schedule: schedule.to_string(),
        scip,
        bto_ratio: if requests == 0 {
            0.0
        } else {
            bto as f64 / requests as f64
        },
        bto_gbps: bytes as f64 * 8.0 / span.max(1e-9) / 1e9,
        availability: report.availability(),
        mean_latency_ms: if requests == 0 {
            0.0
        } else {
            lat / requests as f64
        },
        p50_ms: hist.p50_ms(),
        p99_ms: hist.p99_ms(),
        p999_ms: hist.p999_ms(),
        counters: report.counters,
    }
}

/// Figure 6 under chaos: replay the TDC timeline through the resilient
/// serving path under three fault schedules (calm, origin brownout, OC
/// churn), with SCIP deployed from tick 0 vs never (LRU). Also runs the
/// calm timeline through the *plain* path and records whether the
/// resilient replay was bit-identical — the machinery must be free when
/// nothing fails.
pub fn fig6_chaos(requests: u64, seed: u64) -> ChaosStudy {
    let raw = TraceGenerator::generate(Workload::CdnT.profile().config(requests, seed));
    let stats = TraceStats::compute(&raw);
    let raw_span = raw.last().map(|r| r.wall_secs).unwrap_or(1.0);
    let trace = tdc::fault::dilate_wall_clock(&raw, CHAOS_SPAN_SECS / raw_span.max(1e-9));
    let span = trace.last().map(|r| r.wall_secs).unwrap_or(1.0);

    let base = tdc::DeploymentConfig {
        tdc: tdc::TdcConfig {
            oc_nodes: 4,
            oc_capacity: stats.cache_bytes_for_fraction(0.01),
            dc_capacity: stats.cache_bytes_for_fraction(0.05),
            deploy_at: u64::MAX,
            seed,
        },
        latency: tdc::LatencyModel::default(),
        deploy_fraction: 0.0,
        bucket_secs: (span / 48.0).max(1e-6),
    };
    let res = tdc::ResilienceConfig::default();
    let schedules = [
        ("calm", tdc::FaultSchedule::calm()),
        (
            "origin-brownout",
            tdc::FaultSchedule::origin_brownout(span, seed),
        ),
        (
            "oc-churn",
            tdc::FaultSchedule::oc_churn(span, base.tdc.oc_nodes, seed),
        ),
    ];

    let mut cells = Vec::new();
    let mut calm_scip_report = None;
    for (name, schedule) in &schedules {
        for scip in [true, false] {
            let cfg = tdc::DeploymentConfig {
                // SCIP from the first request vs never (plain LRU): a
                // deploy fraction past the end of the trace never fires.
                deploy_fraction: if scip { 0.0 } else { 2.0 },
                ..base
            };
            let report = tdc::run_deployment_resilient(&trace, cfg, schedule.clone(), res)
                .expect("chaos config is valid");
            cells.push(chaos_cell(name, scip, &report));
            if *name == "calm" && scip {
                calm_scip_report = Some(report);
            }
        }
    }

    // The no-overhead gate: under calm, the resilient path must replay
    // bit-identically to the plain path.
    let calm = calm_scip_report.expect("calm arm ran");
    let plain = tdc::run_deployment(&trace, base);
    let calm_matches_plain = plain.buckets == calm.buckets
        && plain.hist_before == calm.hist_before
        && plain.hist_after == calm.hist_after
        && plain.before == calm.before
        && plain.after == calm.after;

    ChaosStudy {
        cells,
        calm_matches_plain,
        requests,
        seed,
    }
}

/// Run fingerprinted grid cells fault-tolerantly (checkpoint/resume from
/// `CDN_SIM_CHECKPOINT`, retry/strictness from `CDN_SIM_RETRIES` /
/// `CDN_SIM_STRICT`) and report what happened: the sweep completes even
/// when individual cells panic, and those cells render as [`FAIL_CELL`].
fn run_grid<F>(title: &str, cells: Vec<(String, F)>) -> Vec<Option<RunMeasurement>>
where
    F: FnMut() -> RunMeasurement + Send,
{
    let checkpoint = Checkpoint::from_env();
    let report: SweepReport<RunMeasurement> =
        run_checkpointed(cells, checkpoint.as_ref(), &SweepConfig::from_env());
    let failures = report.failures();
    if !failures.is_empty() || report.cached() > 0 {
        eprintln!("{title}: {}", report.summary());
        for (idx, msg) in &failures {
            eprintln!("  cell {idx} failed: {msg}");
        }
    }
    report.into_values()
}

/// Table text for a grid cell whose job panicked through all retries.
const FAIL_CELL: &str = "FAIL";

fn miss_ratio_grid(
    bench: &Bench,
    policies: &[PolicyKind],
    cache_gbs: &[f64],
    title: &str,
) -> Result<Table, ExperimentError> {
    let mut header = vec!["workload".to_string(), "cache".to_string()];
    header.extend(policies.iter().map(|p| p.label().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &header_refs);
    let hashes: Vec<u64> = bench
        .traces
        .iter()
        .map(|(_, trace, _)| cdn_trace::trace_content_hash(trace))
        .collect();
    for &gb in cache_gbs {
        let cells: Vec<_> = bench
            .traces
            .iter()
            .zip(&hashes)
            .flat_map(|((w, trace, stats), &trace_hash)| {
                let cap = bench.paper_cache_bytes(*w, stats, gb);
                policies.iter().map(move |&kind| {
                    let trace = trace.clone();
                    let seed = kind as u64 ^ 0x5eed;
                    (kind.fingerprint(cap, trace_hash, seed), move || {
                        let ctx = TraceCtx::new(&trace, seed);
                        run_policy(kind, cap, &trace, &ctx)
                    })
                })
            })
            .collect();
        let results = run_grid(title, cells);
        let per_workload = policies.len();
        for (i, (w, _, _)) in bench.traces.iter().enumerate() {
            let mut cells = vec![w.name().to_string(), format!("{gb:.0}GB*")];
            for j in 0..per_workload {
                cells.push(match &results[i * per_workload + j] {
                    Some(m) => pct(m.miss_ratio),
                    None => FAIL_CELL.to_string(),
                });
            }
            t.row(cells)?;
        }
    }
    Ok(t)
}

/// Figure 7: SCIP vs SCI miss ratios at the paper's three cache points.
pub fn fig7(bench: &Bench) -> Result<Table, ExperimentError> {
    miss_ratio_grid(
        bench,
        &[PolicyKind::Sci, PolicyKind::Scip],
        &[64.0, 128.0, 256.0],
        "Figure 7 — SCIP vs SCI (cache sizes are paper-equivalent WSS fractions)",
    )
}

/// Figure 8: SCIP vs the eight insertion policies and Belady, at the
/// paper's 64/128/256 GB points.
pub fn fig8(bench: &Bench) -> Result<Table, ExperimentError> {
    let mut policies = vec![PolicyKind::Belady, PolicyKind::Scip, PolicyKind::Lru];
    policies.extend(PolicyKind::INSERTION_BASELINES);
    miss_ratio_grid(
        bench,
        &policies,
        &[64.0, 128.0, 256.0],
        "Figure 8 — miss ratio: SCIP vs insertion/promotion policies",
    )
}

fn resource_table(
    bench: &Bench,
    policies: &[PolicyKind],
    title: &str,
) -> Result<Table, ExperimentError> {
    // Paper: resources measured on CDN-T at 64 GB.
    let (w, trace, stats) = &bench.traces[0];
    let cap = bench.paper_cache_bytes(*w, stats, 64.0);
    let trace_hash = cdn_trace::trace_content_hash(trace);
    let cells: Vec<_> = policies
        .iter()
        .map(|&kind| {
            let trace = trace.clone();
            let seed = kind as u64 ^ 0x5eed;
            (kind.fingerprint(cap, trace_hash, seed), move || {
                let ctx = TraceCtx::new(&trace, seed);
                run_policy(kind, cap, &trace, &ctx)
            })
        })
        .collect();
    let mut t = Table::new(
        title,
        &[
            "policy",
            "miss_ratio",
            "ns/req (CPU proxy)",
            "peak mem (MB)",
            "TPS (K/s)",
        ],
    );
    for (kind, result) in policies.iter().zip(run_grid(title, cells)) {
        match result {
            Some(m) => t.row(vec![
                m.policy.clone(),
                pct(m.miss_ratio),
                format!("{:.0}", m.ns_per_request),
                mb(m.peak_memory_bytes),
                format!("{:.0}", m.tps / 1e3),
            ])?,
            None => t.row(vec![
                kind.label().to_string(),
                FAIL_CELL.to_string(),
                FAIL_CELL.to_string(),
                FAIL_CELL.to_string(),
                FAIL_CELL.to_string(),
            ])?,
        };
    }
    Ok(t)
}

/// Figure 9: CPU/memory/TPS of SCIP vs insertion policies on CDN-T.
pub fn fig9(bench: &Bench) -> Result<Table, ExperimentError> {
    let mut policies = vec![PolicyKind::Belady, PolicyKind::Scip, PolicyKind::Lru];
    policies.extend(PolicyKind::INSERTION_BASELINES);
    resource_table(
        bench,
        &policies,
        "Figure 9 — resource use of insertion policies on CDN-T (64GB*)",
    )
}

/// Figure 10: SCIP vs the eight replacement algorithms.
pub fn fig10(bench: &Bench) -> Result<Table, ExperimentError> {
    let mut policies = vec![PolicyKind::Belady, PolicyKind::Scip, PolicyKind::Lru];
    policies.extend(PolicyKind::REPLACEMENT_BASELINES);
    miss_ratio_grid(
        bench,
        &policies,
        &[64.0],
        "Figure 10 — miss ratio: SCIP vs replacement algorithms (64GB*)",
    )
}

/// Figure 11: CPU/memory/TPS of SCIP vs replacement algorithms on CDN-T.
pub fn fig11(bench: &Bench) -> Result<Table, ExperimentError> {
    let mut policies = vec![PolicyKind::Belady, PolicyKind::Scip, PolicyKind::Lru];
    policies.extend(PolicyKind::REPLACEMENT_BASELINES);
    resource_table(
        bench,
        &policies,
        "Figure 11 — resource use of replacement algorithms on CDN-T (64GB*)",
    )
}

/// Figure 12: enhancing LRU-K and LRB with SCIP (vs ASC-IP reference).
pub fn fig12(bench: &Bench) -> Result<Table, ExperimentError> {
    miss_ratio_grid(
        bench,
        &[
            PolicyKind::LruK,
            PolicyKind::LruKScip,
            PolicyKind::LruKAscIp,
            PolicyKind::Lrb,
            PolicyKind::LrbScip,
            PolicyKind::LrbAscIp,
        ],
        &[64.0],
        "Figure 12 — SCIP/ASC-IP as enhancement layers over LRU-K and LRB (64GB*)",
    )
}

/// Beyond the paper: SCIP vs the §7 admission family (2Q, TinyLFU,
/// AdaptSize) — the front-door answers to the same ZRO problem.
pub fn admission_comparison(bench: &Bench) -> Result<Table, ExperimentError> {
    miss_ratio_grid(
        bench,
        &[
            PolicyKind::Belady,
            PolicyKind::Scip,
            PolicyKind::Lru,
            PolicyKind::TwoQ,
            PolicyKind::TinyLfu,
            PolicyKind::AdaptSize,
        ],
        &[64.0],
        "Extra — SCIP vs admission algorithms (2Q / TinyLFU / AdaptSize, 64GB*)",
    )
}

/// Beyond the paper: full miss-ratio curves (cache size sweep from 0.5 %
/// to 25 % of the WSS) for the headline policies — the classic
/// miss-ratio-curve view the paper's per-point bars summarise.
pub fn miss_curves(bench: &Bench) -> Result<Table, ExperimentError> {
    let policies = [
        PolicyKind::Belady,
        PolicyKind::Scip,
        PolicyKind::Lru,
        PolicyKind::AscIp,
        PolicyKind::Ship,
        PolicyKind::S4Lru,
    ];
    let fractions = [0.005, 0.01, 0.02, 0.05, 0.1, 0.25];
    let mut header = vec!["workload".to_string(), "wss_frac".to_string()];
    header.extend(policies.iter().map(|p| p.label().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Extra — miss-ratio curves (cache as fraction of WSS)",
        &header_refs,
    );
    let hashes: Vec<u64> = bench
        .traces
        .iter()
        .map(|(_, trace, _)| cdn_trace::trace_content_hash(trace))
        .collect();
    for &frac in &fractions {
        let cells: Vec<_> = bench
            .traces
            .iter()
            .zip(&hashes)
            .flat_map(|((_, trace, stats), &trace_hash)| {
                let cap = stats.cache_bytes_for_fraction(frac);
                policies.iter().map(move |&kind| {
                    let trace = trace.clone();
                    let seed = kind as u64 ^ 0xC0FFEE;
                    (kind.fingerprint(cap, trace_hash, seed), move || {
                        let ctx = TraceCtx::new(&trace, seed);
                        run_policy(kind, cap, &trace, &ctx)
                    })
                })
            })
            .collect();
        let results = run_grid("miss-ratio curves", cells);
        for (i, (w, _, _)) in bench.traces.iter().enumerate() {
            let mut cells = vec![w.name().to_string(), format!("{frac}")];
            for j in 0..policies.len() {
                cells.push(match &results[i * policies.len() + j] {
                    Some(m) => pct(m.miss_ratio),
                    None => FAIL_CELL.to_string(),
                });
            }
            t.row(cells)?;
        }
    }
    Ok(t)
}

/// Beyond the paper: seed sensitivity — the headline SCIP-vs-LRU delta
/// across independent trace seeds (mean ± spread), on CDN-T at 64GB*.
pub fn seed_variance(requests: u64) -> Result<Table, ExperimentError> {
    let seeds = [11u64, 23, 37, 59, 71];
    let jobs: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            move || {
                let w = Workload::CdnT;
                let trace = TraceGenerator::generate(w.profile().config(requests, seed));
                let stats = TraceStats::compute(&trace);
                let cap = stats.cache_bytes_for_fraction(w.paper_cache_fraction(64.0));
                let ctx = TraceCtx::new(&trace, seed);
                let lru = run_policy(PolicyKind::Lru, cap, &trace, &ctx).miss_ratio;
                let scip = run_policy(PolicyKind::Scip, cap, &trace, &ctx).miss_ratio;
                (seed, lru, scip)
            }
        })
        .collect();
    let mut t = Table::new(
        "Extra — seed sensitivity of the SCIP-vs-LRU delta (CDN-T, 64GB*)",
        &["seed", "LRU", "SCIP", "delta (pp)"],
    );
    let mut deltas = Vec::new();
    for (seed, lru, scip) in parallel_runs(jobs) {
        deltas.push((lru - scip) * 100.0);
        t.row(vec![
            seed.to_string(),
            pct(lru),
            pct(scip),
            format!("{:+.2}", (lru - scip) * 100.0),
        ])?;
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
    t.row(vec![
        "mean±sd".into(),
        String::new(),
        String::new(),
        format!("{mean:+.2}±{:.2}", var.sqrt()),
    ])?;
    Ok(t)
}

/// Ablations beyond the paper: fixed vs adaptive λ, history budget,
/// update interval and unlearn threshold, on CDN-T at 64 GB*.
pub fn ablations(bench: &Bench) -> Result<Table, ExperimentError> {
    use scip::{Scip, ScipConfig};
    let (w, trace, stats) = &bench.traces[0];
    let cap = bench.paper_cache_bytes(*w, stats, 64.0);
    let base = ScipConfig {
        seed: bench.seed,
        update_interval: (bench.requests / 40).max(2_000),
        ..ScipConfig::default()
    };
    let variants: Vec<(String, ScipConfig)> = vec![
        ("default".into(), base),
        (
            "fixed λ=0.1 (no Algorithm 2)".into(),
            ScipConfig {
                unlearn_threshold: u32::MAX,
                initial_lambda: 0.1,
                ..base
            },
        ),
        (
            "history = 1/4 cache".into(),
            ScipConfig {
                history_fraction: 0.25,
                ..base
            },
        ),
        (
            "history = 1x cache".into(),
            ScipConfig {
                history_fraction: 1.0,
                ..base
            },
        ),
        (
            "interval i = requests/10".into(),
            ScipConfig {
                update_interval: (bench.requests / 10).max(2_000),
                ..base
            },
        ),
        (
            "interval i = requests/160".into(),
            ScipConfig {
                update_interval: (bench.requests / 160).max(500),
                ..base
            },
        ),
        (
            "unlearnCount threshold = 3".into(),
            ScipConfig {
                unlearn_threshold: 3,
                ..base
            },
        ),
        (
            "unlearnCount threshold = 30".into(),
            ScipConfig {
                unlearn_threshold: 30,
                ..base
            },
        ),
    ];
    let jobs: Vec<_> = variants
        .into_iter()
        .map(|(name, cfg)| {
            let trace = trace.clone();
            move || {
                let mut p = Scip::with_config(cap, cfg);
                let m = cdn_policies::replay(&mut p, &trace);
                (name, m.miss_ratio())
            }
        })
        .collect();
    let mut t = Table::new(
        "Ablations — SCIP design choices on CDN-T (64GB*)",
        &["variant", "miss_ratio"],
    );
    for (name, mr) in parallel_runs(jobs) {
        t.row(vec![name, pct(mr)])?;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench() -> Bench {
        Bench::generate(30_000, 9)
    }

    #[test]
    fn table1_has_all_rows() {
        let b = tiny_bench();
        let t = table1(&b).unwrap();
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn fig3_monotone_in_treated_fraction() {
        let b = tiny_bench();
        let t = fig3(&b).unwrap();
        assert_eq!(t.len(), 15); // 3 workloads × 5 fractions
    }

    #[test]
    fn fig4_produces_accuracy_for_all_models() {
        let b = Bench::generate(20_000, 11);
        let t = fig4(&b).unwrap();
        assert_eq!(t.len(), 9); // 3 workloads × 3 tasks
        let body = t.render();
        assert!(!body.contains("NaN"));
    }

    #[test]
    fn fig7_grid_shape() {
        let b = tiny_bench();
        let t = fig7(&b).unwrap();
        assert_eq!(t.len(), 9); // 3 sizes × 3 workloads
    }

    #[test]
    fn fig12_grid_shape() {
        let b = tiny_bench();
        let t = fig12(&b).unwrap();
        assert_eq!(t.len(), 3);
    }
}
