//! Fault-injection facade for simulator tests (feature `fault-injection`).
//!
//! Re-exports the process-global deterministic failpoint registry from
//! `cdn_cache::fault` together with every site name the simulator stack
//! instruments, so a test can arm any failure mode from one import:
//!
//! ```ignore
//! use cdn_sim::fault::{self, FaultAction, FaultRule, FP_SWEEP_JOB};
//! fault::arm(FP_SWEEP_JOB, FaultRule::OnKeys(vec![3, 17], FaultAction::Panic("injected".into())));
//! // ... run the sweep; jobs 3 and 17 panic deterministically ...
//! fault::clear();
//! ```
//!
//! Armed sites are global to the process: tests that use the registry
//! must serialise on a lock of their own and call [`clear`] when done.
//!
//! Instrumented sites:
//!
//! - [`FP_SWEEP_JOB`] (`sweep.job`, key = job index) — fires inside the
//!   executor's isolation boundary, before each attempt of a job; a
//!   `Panic` action exercises panic isolation, and a
//!   `FaultRule::FirstAttempts` rule exercises the bounded-retry path.
//! - [`FP_READ_CHUNK`] (`trace.read_chunk`, key = chunk index) — fires
//!   after each binary trace chunk is read; `ShortRead` truncates the
//!   chunk (→ `TraceError::TruncatedMidRecord`), `CorruptByte` flips a
//!   payload bit (→ `TraceError::ChecksumMismatch` on v2).

pub use cdn_cache::fault::{arm, check, clear, disarm, fired, maybe_panic, FaultAction, FaultRule};
pub use cdn_trace::io::FP_READ_CHUNK;

pub use crate::sweep::FP_SWEEP_JOB;
