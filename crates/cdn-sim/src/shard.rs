//! Sharded multi-core replay: one policy instance per key partition,
//! replayed on dedicated threads, aggregated at the end.
//!
//! The unit of parallelism is the shard, not the request: each shard owns
//! a private [`cdn_sim::PolicyKind`](crate::PolicyKind) instance and
//! replays its order-preserving partition (built by
//! [`cdn_trace::partition_columns`]) with zero cross-thread communication.
//! The merge is pure arithmetic over per-shard ledgers, so the threaded
//! aggregate is *provably* equal to replaying each partition serially —
//! [`run_sharded`] and [`run_sharded_serial`] produce identical
//! [`AggregateMeasurement`]s (exact `u64` equality, property-tested in
//! `tests/shard_check.rs`).
//!
//! What sharding changes, honestly: each shard manages `capacity / N`
//! bytes over *its keys only*, so the aggregate miss ratio is not the
//! unsharded instance's miss ratio — hot keys can no longer displace cold
//! keys on other shards. Both numbers are real; the bench reports them
//! side by side (DESIGN.md §15).

use std::convert::Infallible;
use std::sync::mpsc::sync_channel;
use std::time::Instant;

use cdn_cache::{key_shard, route_with_failover, Request};
use cdn_trace::{partition_columns, ChunkPartitioner, ShardedTrace, TraceColumns};

use crate::runner::{BatchMode, RunMeasurement, TraceCtx};
use crate::PolicyKind;

/// Bound on each shard's mini-chunk queue in [`run_sharded_stream`]: the
/// partitioning thread may run at most this many chunks ahead of a shard,
/// so in-flight trace data stays at `shards × SHARD_QUEUE_SLOTS`
/// mini-chunks regardless of trace length.
pub const SHARD_QUEUE_SLOTS: usize = 2;

/// Ledger-level aggregate of a sharded replay — the exact counters, not
/// ratios, so equality against a reference decomposition is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggregateMeasurement {
    /// Requests across all shards.
    pub requests: u64,
    /// Hits across all shards.
    pub hits: u64,
    /// Misses (rejections included) across all shards.
    pub misses: u64,
    /// Bytes served from cache across all shards.
    pub hit_bytes: u64,
    /// Bytes missed to origin across all shards.
    pub miss_bytes: u64,
    /// Sum of per-shard peak policy-metadata bytes.
    pub peak_memory_bytes: usize,
    /// Sum of per-shard resident objects at end of replay.
    pub resident_objects: usize,
}

impl AggregateMeasurement {
    /// Object miss ratio of the merged ledger.
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }

    /// Byte miss ratio of the merged ledger.
    pub fn byte_miss_ratio(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.miss_bytes as f64 / total as f64
        }
    }

    fn absorb(&mut self, m: &RunMeasurement) {
        self.requests += m.requests();
        self.hits += m.hits;
        self.misses += m.misses;
        self.hit_bytes += m.hit_bytes;
        self.miss_bytes += m.miss_bytes;
        self.peak_memory_bytes += m.peak_memory_bytes;
        self.resident_objects += m.resident_objects;
    }
}

/// Result of replaying a [`ShardedTrace`] (threaded or serial reference).
#[derive(Debug, Clone)]
pub struct ShardedRunReport {
    /// Per-shard measurements, indexed by shard.
    pub per_shard: Vec<RunMeasurement>,
    /// Merged ledgers (exactly the sum of `per_shard`).
    pub aggregate: AggregateMeasurement,
    /// Wall-clock seconds of the replay region: threaded span for
    /// [`run_sharded`], sum of per-shard replays for
    /// [`run_sharded_serial`]. Context building (next-access tables) is
    /// excluded from both — it is a per-shard preprocessing pass, not
    /// replay.
    pub wall_secs: f64,
}

impl ShardedRunReport {
    /// Aggregate requests per wall-clock second over the replay region.
    pub fn aggregate_tps(&self) -> f64 {
        self.aggregate.requests as f64 / self.wall_secs.max(1e-9)
    }
}

/// Shard columns re-ticked to local positions `0..len`, plus their replay
/// contexts — both built outside the timed region (preprocessing, not
/// replay).
///
/// The partitioner preserves original global ticks (it is a faithful
/// subsequence extractor), but replay contexts index next-access tables
/// positionally and [`cdn_policies::replacement::BeladyPolicy`] requires
/// `req.tick` to be that position. Localizing is a monotone renumbering
/// within each shard, so relative request order — the thing cache
/// outcomes depend on — is untouched, and both the threaded and serial
/// paths see the identical localized stream.
fn localized_shards(sharded: &ShardedTrace, seed: u64) -> Vec<(TraceColumns, TraceCtx)> {
    sharded
        .shards
        .iter()
        .map(|cols| {
            let mut local = cols.clone();
            for (i, t) in local.ticks.iter_mut().enumerate() {
                *t = i as u64;
            }
            let requests = local.to_requests();
            let ctx = TraceCtx::new(&requests, seed);
            (local, ctx)
        })
        .collect()
}

fn replay_one(
    kind: PolicyKind,
    per_shard_capacity: u64,
    cols: &TraceColumns,
    ctx: &TraceCtx,
    mode: BatchMode,
) -> RunMeasurement {
    kind.replay_batched(per_shard_capacity, cols, ctx, mode)
}

fn merge(per_shard: Vec<RunMeasurement>, wall_secs: f64) -> ShardedRunReport {
    let mut aggregate = AggregateMeasurement::default();
    for m in &per_shard {
        aggregate.absorb(m);
    }
    ShardedRunReport {
        per_shard,
        aggregate,
        wall_secs,
    }
}

/// Replay every shard on its own dedicated thread (one thread per shard,
/// even above `available_parallelism` — the OS time-slices and the bench
/// reports the degradation honestly rather than hiding it).
///
/// `total_capacity` is split evenly: each shard's policy instance manages
/// `total_capacity / shards` bytes. Replays are independent and
/// deterministic, so the aggregate equals [`run_sharded_serial`] exactly.
pub fn run_sharded(
    kind: PolicyKind,
    total_capacity: u64,
    sharded: &ShardedTrace,
    seed: u64,
    mode: BatchMode,
) -> ShardedRunReport {
    let n = sharded.shard_count();
    assert!(n > 0, "run_sharded: no shards");
    let per_shard_capacity = (total_capacity / n as u64).max(1);
    let prepared = localized_shards(sharded, seed);
    let start = Instant::now();
    let per_shard: Vec<RunMeasurement> = std::thread::scope(|s| {
        let handles: Vec<_> = prepared
            .iter()
            .map(|(cols, ctx)| {
                s.spawn(move || replay_one(kind, per_shard_capacity, cols, ctx, mode))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard replay thread panicked"))
            .collect()
    });
    merge(per_shard, start.elapsed().as_secs_f64())
}

/// The reference decomposition: replay each partition serially on the
/// calling thread, identical per-shard work, summed wall time. This is
/// what the sharded aggregate is proven equal against, and the serial
/// baseline of the scaling curve.
pub fn run_sharded_serial(
    kind: PolicyKind,
    total_capacity: u64,
    sharded: &ShardedTrace,
    seed: u64,
    mode: BatchMode,
) -> ShardedRunReport {
    let n = sharded.shard_count();
    assert!(n > 0, "run_sharded_serial: no shards");
    let per_shard_capacity = (total_capacity / n as u64).max(1);
    let prepared = localized_shards(sharded, seed);
    let mut wall = 0f64;
    let per_shard: Vec<RunMeasurement> = prepared
        .iter()
        .map(|(cols, ctx)| {
            let start = Instant::now();
            let m = replay_one(kind, per_shard_capacity, cols, ctx, mode);
            wall += start.elapsed().as_secs_f64();
            m
        })
        .collect();
    merge(per_shard, wall)
}

/// Sharded replay over a chunk stream: the trace never exists whole.
///
/// The calling thread partitions each incoming chunk with a
/// [`ChunkPartitioner`] (per-shard ticks localized `0..len`, continuous
/// across chunk boundaries — exactly the stream `localized_shards`
/// produces from an in-RAM partition) and feeds per-shard mini-chunks
/// into bounded queues ([`SHARD_QUEUE_SLOTS`] deep); one thread per shard
/// replays its queue through a persistent policy instance via the same
/// monomorphized chunked hot loop as [`PolicyKind::replay_stream`].
/// Aggregates are u64-identical to [`run_sharded_serial`] over the
/// in-RAM partition when the same per-shard contexts are supplied
/// (pinned in tests).
///
/// `ctxs` supplies one replay context per shard and fixes the shard
/// count. Production streams use [`TraceCtx::without_oracle`] (Belady
/// needs the trace in RAM); identity tests pass the exact localized
/// contexts.
///
/// The first stream `Err` aborts feeding, lets every shard drain what it
/// was already given, and is returned — no silently partial aggregate.
///
/// # Panics
/// If `ctxs` is empty or a shard replay thread panics.
pub fn run_sharded_stream<I, E>(
    kind: PolicyKind,
    total_capacity: u64,
    chunks: I,
    ctxs: &[TraceCtx],
    mode: BatchMode,
) -> Result<ShardedRunReport, E>
where
    I: IntoIterator<Item = Result<TraceColumns, E>>,
{
    let n = ctxs.len();
    assert!(n > 0, "run_sharded_stream: no shards");
    let per_shard_capacity = (total_capacity / n as u64).max(1);
    let mut part = ChunkPartitioner::new(n);
    let start = Instant::now();
    let (stream_err, per_shard) = std::thread::scope(|s| {
        let mut txs = Vec::with_capacity(n);
        let handles: Vec<_> = ctxs
            .iter()
            .map(|ctx| {
                let (tx, rx) = sync_channel::<TraceColumns>(SHARD_QUEUE_SLOTS);
                txs.push(tx);
                s.spawn(move || {
                    kind.replay_stream(
                        per_shard_capacity,
                        rx.into_iter().map(Ok::<_, Infallible>),
                        ctx,
                        mode,
                    )
                    .unwrap_or_else(|e| match e {})
                })
            })
            .collect();
        let mut err = None;
        'feed: for chunk in chunks {
            match chunk {
                Ok(c) => {
                    for (shard, mini) in part.split(&c).into_iter().enumerate() {
                        // Empty mini-chunks carry no work; skipping them
                        // keeps queue traffic proportional to routed
                        // requests (the serial reference skips identically).
                        if !mini.is_empty() && txs[shard].send(mini).is_err() {
                            // Receiver gone ⇒ that shard's thread died; stop
                            // feeding and let the join below surface it.
                            break 'feed;
                        }
                    }
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        drop(txs);
        let per_shard: Vec<RunMeasurement> = handles
            .into_iter()
            .map(|h| h.join().expect("shard replay thread panicked"))
            .collect();
        (err, per_shard)
    });
    match stream_err {
        Some(e) => Err(e),
        None => Ok(merge(per_shard, start.elapsed().as_secs_f64())),
    }
}

/// Serial reference for [`run_sharded_stream`]: consume the stream once,
/// buffering each shard's mini-chunk sequence (boundaries preserved),
/// then replay the shards one after another on the calling thread through
/// the identical chunked loop. Because each shard sees the same
/// mini-chunks at the same global offsets with the same context, every
/// per-shard measurement is bit-identical to the threaded run's — this is
/// the proof harness (it buffers the whole partition in RAM; the
/// out-of-core path is [`run_sharded_stream`]).
///
/// # Panics
/// If `ctxs` is empty.
pub fn run_sharded_stream_serial<I, E>(
    kind: PolicyKind,
    total_capacity: u64,
    chunks: I,
    ctxs: &[TraceCtx],
    mode: BatchMode,
) -> Result<ShardedRunReport, E>
where
    I: IntoIterator<Item = Result<TraceColumns, E>>,
{
    let n = ctxs.len();
    assert!(n > 0, "run_sharded_stream_serial: no shards");
    let per_shard_capacity = (total_capacity / n as u64).max(1);
    let mut part = ChunkPartitioner::new(n);
    let mut queued: Vec<Vec<TraceColumns>> = vec![Vec::new(); n];
    for chunk in chunks {
        let chunk = chunk?;
        for (shard, mini) in part.split(&chunk).into_iter().enumerate() {
            if !mini.is_empty() {
                queued[shard].push(mini);
            }
        }
    }
    let mut wall = 0f64;
    let per_shard: Vec<RunMeasurement> = queued
        .into_iter()
        .zip(ctxs)
        .map(|(minis, ctx)| {
            let start = Instant::now();
            let m = kind
                .replay_stream(
                    per_shard_capacity,
                    minis.into_iter().map(Ok::<_, Infallible>),
                    ctx,
                    mode,
                )
                .unwrap_or_else(|e| match e {});
            wall += start.elapsed().as_secs_f64();
            m
        })
        .collect();
    Ok(merge(per_shard, wall))
}

/// One shard outage for the routed reference replay, expressed as global
/// indices into the request stream so the decision boundary is exact.
///
/// The request at `crash_index` (a primary request of `shard`) consumes a
/// victim tick and is **lost**: it never reaches the policy, because the
/// daemon's kill failpoint fires before `on_request`, and the victim's
/// cache dies with that incarnation. Requests with index strictly inside
/// `(crash_index, end_index)` whose primary is `shard` re-route to their
/// rendezvous failover shard. At `end_index` the shard revives with a
/// fresh (cold) policy; its tick counter continues across incarnations,
/// exactly like the daemon's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The shard that is down.
    pub shard: usize,
    /// Global index of the killing request (lost, ticks the victim).
    pub crash_index: usize,
    /// Exclusive global index at which the shard is back up.
    pub end_index: usize,
}

/// Per-shard ledger of a routed reference replay — the exact counters the
/// daemon must reproduce u64-for-u64 on *every* shard (victims included)
/// when failover routing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutedShardLedger {
    /// Requests fully served by this shard's policy.
    pub processed: u64,
    /// Requests lost at a crash boundary (ticked, never served).
    pub lost: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes missed to origin.
    pub miss_bytes: u64,
    /// Requests served here whose primary shard was down (overlay
    /// traffic absorbed for a dead sibling).
    pub failover_in: u64,
}

/// Result of [`run_routed_serial`].
#[derive(Debug, Clone)]
pub struct RoutedRunReport {
    /// Per-shard ledgers, indexed by shard.
    pub per_shard: Vec<RoutedShardLedger>,
    /// Requests that found every shard down (no route at all). The chaos
    /// schedules keep outages non-overlapping, so this stays 0 there.
    pub unroutable: u64,
}

/// Routing-aware serial reference: replay `requests` in global order
/// through per-shard policies built exactly like [`run_sharded_serial`]'s
/// (calm-partition contexts, floor capacity split), but route each
/// request with the *same* deterministic failover decision the daemon
/// makes — primary [`key_shard`] home while up, rendezvous-ordered
/// secondary ([`route_with_failover`]) while the primary is inside an
/// [`OutageWindow`].
///
/// With `windows` empty this degenerates to the calm decomposition: every
/// request lands on its primary in partition order with local ticks
/// `0..len`, so the per-shard ledgers equal [`run_sharded_serial`]'s
/// bit-for-bit (asserted in tests — the "routing on, nothing down"
/// invariant the daemon gates on).
///
/// # Panics
/// If `shards` is zero or any window's `shard` is out of range.
pub fn run_routed_serial(
    kind: PolicyKind,
    total_capacity: u64,
    requests: &[Request],
    shards: usize,
    seed: u64,
    windows: &[OutageWindow],
) -> RoutedRunReport {
    assert!(shards > 0, "run_routed_serial: no shards");
    assert!(
        windows.iter().all(|w| w.shard < shards),
        "run_routed_serial: window shard out of range"
    );
    let per_shard_capacity = (total_capacity / shards as u64).max(1);
    // Policies are built from the *calm* partition's localized contexts —
    // the same contexts the daemon's policy factory uses for first starts
    // and restarts alike.
    let sharded = partition_columns(&TraceColumns::from_requests(requests), shards);
    let ctxs: Vec<(Vec<Request>, TraceCtx)> = sharded
        .shards
        .iter()
        .map(|cols| {
            let mut local = cols.clone();
            for (i, t) in local.ticks.iter_mut().enumerate() {
                *t = i as u64;
            }
            let reqs = local.to_requests();
            let ctx = TraceCtx::new(&reqs, seed);
            (reqs, ctx)
        })
        .collect();
    let mut policies: Vec<_> = ctxs
        .iter()
        .map(|(_, ctx)| Some(kind.build(per_shard_capacity, ctx)))
        .collect();
    let mut ledgers = vec![RoutedShardLedger::default(); shards];
    let mut ticks = vec![0u64; shards];
    let mut unroutable = 0u64;
    for (i, req) in requests.iter().enumerate() {
        if let Some(w) = windows.iter().find(|w| w.crash_index == i) {
            // The killing request: consumes a victim tick, is counted
            // lost, never reaches the policy (the failpoint panics before
            // `on_request`), and the victim's cache dies here.
            ticks[w.shard] += 1;
            ledgers[w.shard].lost += 1;
            policies[w.shard] = None;
            continue;
        }
        let down = |s: usize| {
            windows
                .iter()
                .any(|w| w.shard == s && w.crash_index < i && i < w.end_index)
        };
        // Revive any shard whose window just ended: fresh cold policy,
        // tick counter continuing (the daemon's restart semantics).
        for w in windows {
            if w.end_index <= i && policies[w.shard].is_none() && !down(w.shard) {
                policies[w.shard] = Some(kind.build(per_shard_capacity, &ctxs[w.shard].1));
            }
        }
        let primary = key_shard(req.id.0, shards);
        let Some(target) = route_with_failover(req.id.0, shards, down) else {
            unroutable += 1;
            continue;
        };
        let mut local = *req;
        local.tick = ticks[target];
        ticks[target] += 1;
        let outcome = policies[target]
            .as_mut()
            .expect("routed target must be up")
            .on_request(&local);
        let ledger = &mut ledgers[target];
        if outcome.is_hit() {
            ledger.hits += 1;
            ledger.hit_bytes += req.size;
        } else {
            ledger.misses += 1;
            ledger.miss_bytes += req.size;
        }
        ledger.processed += 1;
        if target != primary {
            ledger.failover_in += 1;
        }
    }
    RoutedRunReport {
        per_shard: ledgers,
        unroutable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::partition_columns;

    fn sample_sharded(n: usize) -> ShardedTrace {
        let reqs: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i * 13 % 700, 1 + i % 40)).collect();
        let trace = cdn_cache::object::micro_trace(&reqs);
        partition_columns(&TraceColumns::from_requests(&trace), n)
    }

    #[test]
    fn threaded_equals_serial_exactly() {
        for shards in [1usize, 2, 3, 4] {
            let sharded = sample_sharded(shards);
            for kind in [PolicyKind::Lru, PolicyKind::Scip] {
                let threaded = run_sharded(kind, 4_000, &sharded, 7, BatchMode::Off);
                let serial = run_sharded_serial(kind, 4_000, &sharded, 7, BatchMode::Off);
                assert_eq!(
                    threaded.aggregate, serial.aggregate,
                    "{kind:?} at {shards} shards"
                );
                for (t, s) in threaded.per_shard.iter().zip(&serial.per_shard) {
                    assert_eq!(t.hits, s.hits);
                    assert_eq!(t.misses, s.misses);
                    assert_eq!(t.hit_bytes, s.hit_bytes);
                    assert_eq!(t.miss_bytes, s.miss_bytes);
                }
            }
        }
    }

    #[test]
    fn batched_mode_does_not_change_aggregates() {
        let sharded = sample_sharded(2);
        let plain = run_sharded(PolicyKind::Lru, 4_000, &sharded, 7, BatchMode::Off);
        let batched = run_sharded(PolicyKind::Lru, 4_000, &sharded, 7, BatchMode::Fixed(8));
        assert_eq!(plain.aggregate, batched.aggregate);
    }

    #[test]
    fn aggregate_covers_every_request() {
        let sharded = sample_sharded(4);
        let report = run_sharded(PolicyKind::Lru, 4_000, &sharded, 7, BatchMode::Off);
        assert_eq!(report.aggregate.requests, sharded.total_requests());
        assert_eq!(
            report.aggregate.hits + report.aggregate.misses,
            report.aggregate.requests
        );
        assert!(report.aggregate_tps() > 0.0);
        let ratio = report.aggregate.miss_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn routed_serial_with_no_windows_is_bit_identical_to_calm_serial() {
        // The calm-path identity the daemon's routing gate relies on:
        // routing enabled with nothing down must change no ledger at all.
        let reqs: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i * 13 % 700, 1 + i % 40)).collect();
        let trace = cdn_cache::object::micro_trace(&reqs);
        for shards in [1usize, 2, 4] {
            let sharded = partition_columns(&TraceColumns::from_requests(&trace), shards);
            for kind in [PolicyKind::Lru, PolicyKind::Scip] {
                let calm = run_sharded_serial(kind, 4_000, &sharded, 7, BatchMode::Off);
                let routed = run_routed_serial(kind, 4_000, &trace, shards, 7, &[]);
                assert_eq!(routed.unroutable, 0);
                for (s, (r, c)) in routed.per_shard.iter().zip(&calm.per_shard).enumerate() {
                    assert_eq!(r.failover_in, 0, "{kind:?} shard {s}");
                    assert_eq!(r.lost, 0, "{kind:?} shard {s}");
                    assert_eq!(
                        (r.hits, r.misses, r.hit_bytes, r.miss_bytes),
                        (c.hits, c.misses, c.hit_bytes, c.miss_bytes),
                        "{kind:?} shard {s} at {shards} shards"
                    );
                    assert_eq!(r.processed, c.hits + c.misses);
                }
            }
        }
    }

    #[test]
    fn routed_serial_accounts_every_request_under_outage() {
        let reqs: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i * 17 % 900, 1 + i % 32)).collect();
        let trace = cdn_cache::object::micro_trace(&reqs);
        let shards = 4usize;
        // Pick a crash index whose request is primary on its shard.
        let crash_index = 10_000usize;
        let victim = cdn_cache::key_shard(trace[crash_index].id.0, shards);
        let windows = [OutageWindow {
            shard: victim,
            crash_index,
            end_index: 20_000,
        }];
        let report = run_routed_serial(PolicyKind::Lru, 4_000, &trace, shards, 7, &windows);
        assert_eq!(report.unroutable, 0);
        let processed: u64 = report.per_shard.iter().map(|l| l.processed).sum();
        let lost: u64 = report.per_shard.iter().map(|l| l.lost).sum();
        assert_eq!(lost, 1);
        assert_eq!(report.per_shard[victim].lost, 1);
        assert_eq!(processed + lost, trace.len() as u64);
        // Overlay traffic landed on survivors, never the victim.
        let failover: u64 = report.per_shard.iter().map(|l| l.failover_in).sum();
        assert!(failover > 0, "outage must divert some primaries");
        assert_eq!(report.per_shard[victim].failover_in, 0);
        // Every ledger stays internally consistent.
        for l in &report.per_shard {
            assert_eq!(l.processed, l.hits + l.misses);
        }
    }

    #[test]
    fn routed_serial_is_deterministic() {
        let reqs: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i * 7 % 500, 1 + i % 20)).collect();
        let trace = cdn_cache::object::micro_trace(&reqs);
        let windows = [OutageWindow {
            shard: cdn_cache::key_shard(trace[2_000].id.0, 4),
            crash_index: 2_000,
            end_index: 6_000,
        }];
        let a = run_routed_serial(PolicyKind::Scip, 4_000, &trace, 4, 7, &windows);
        let b = run_routed_serial(PolicyKind::Scip, 4_000, &trace, 4, 7, &windows);
        assert_eq!(a.per_shard, b.per_shard);
    }

    /// Cut `cols` into owned chunks of `chunk_len` requests.
    fn chunked(cols: &TraceColumns, chunk_len: usize) -> Vec<TraceColumns> {
        let mut out = Vec::new();
        let mut at = 0usize;
        while at < cols.len() {
            let end = (at + chunk_len).min(cols.len());
            let mut c = TraceColumns::new();
            for i in at..end {
                c.push(cols.get(i));
            }
            out.push(c);
            at = end;
        }
        out
    }

    #[test]
    fn streamed_sharded_equals_in_ram_sharded_exactly() {
        // Chunk-fed sharded replay with the exact localized contexts must
        // reproduce the in-RAM partition replay measurement-for-
        // measurement: ledgers, peak metadata, resident objects.
        let reqs: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i * 13 % 700, 1 + i % 40)).collect();
        let trace = cdn_cache::object::micro_trace(&reqs);
        let cols = TraceColumns::from_requests(&trace);
        for shards in [1usize, 3, 4] {
            let sharded = partition_columns(&cols, shards);
            let ctxs: Vec<TraceCtx> = localized_shards(&sharded, 7)
                .into_iter()
                .map(|(_, ctx)| ctx)
                .collect();
            for kind in [PolicyKind::Lru, PolicyKind::Scip] {
                let in_ram = run_sharded_serial(kind, 4_000, &sharded, 7, BatchMode::Off);
                for chunk_len in [997usize, 8_192] {
                    let chunks = chunked(&cols, chunk_len)
                        .into_iter()
                        .map(Ok::<_, &'static str>);
                    let streamed = run_sharded_stream(kind, 4_000, chunks, &ctxs, BatchMode::Off)
                        .expect("clean stream");
                    assert_eq!(
                        streamed.aggregate, in_ram.aggregate,
                        "{kind:?} shards={shards} chunk_len={chunk_len}"
                    );
                    for (s, (a, b)) in streamed.per_shard.iter().zip(&in_ram.per_shard).enumerate()
                    {
                        assert_eq!(
                            (a.hits, a.misses, a.hit_bytes, a.miss_bytes),
                            (b.hits, b.misses, b.hit_bytes, b.miss_bytes),
                            "{kind:?} shard {s}"
                        );
                        assert_eq!(
                            a.peak_memory_bytes, b.peak_memory_bytes,
                            "{kind:?} shard {s}"
                        );
                        assert_eq!(a.resident_objects, b.resident_objects, "{kind:?} shard {s}");
                    }
                }
            }
        }
    }

    #[test]
    fn streamed_serial_reference_matches_threaded_stream() {
        let reqs: Vec<(u64, u64)> = (0..15_000u64).map(|i| (i * 17 % 500, 1 + i % 30)).collect();
        let cols = TraceColumns::from_requests(&cdn_cache::object::micro_trace(&reqs));
        let ctxs: Vec<TraceCtx> = (0..4)
            .map(|_| TraceCtx::without_oracle(cols.len() as u64 / 4, 7))
            .collect();
        let threaded = run_sharded_stream(
            PolicyKind::Scip,
            4_000,
            chunked(&cols, 1_024).into_iter().map(Ok::<_, &'static str>),
            &ctxs,
            BatchMode::Off,
        )
        .unwrap();
        let serial = run_sharded_stream_serial(
            PolicyKind::Scip,
            4_000,
            chunked(&cols, 1_024).into_iter().map(Ok::<_, &'static str>),
            &ctxs,
            BatchMode::Off,
        )
        .unwrap();
        assert_eq!(threaded.aggregate, serial.aggregate);
        for (t, s) in threaded.per_shard.iter().zip(&serial.per_shard) {
            assert_eq!(
                (t.hits, t.misses, t.hit_bytes, t.miss_bytes),
                (s.hits, s.misses, s.hit_bytes, s.miss_bytes)
            );
            assert_eq!(t.peak_memory_bytes, s.peak_memory_bytes);
        }
    }

    #[test]
    fn stream_error_aborts_sharded_replay() {
        let reqs: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i * 7 % 200, 1 + i % 20)).collect();
        let cols = TraceColumns::from_requests(&cdn_cache::object::micro_trace(&reqs));
        let ctxs: Vec<TraceCtx> = (0..2)
            .map(|_| TraceCtx::without_oracle(cols.len() as u64 / 2, 7))
            .collect();
        let chunks: Vec<Result<TraceColumns, &'static str>> = chunked(&cols, 512)
            .into_iter()
            .map(Ok)
            .take(3)
            .chain(std::iter::once(Err("disk went away")))
            .collect();
        let err = run_sharded_stream(PolicyKind::Lru, 4_000, chunks, &ctxs, BatchMode::Off)
            .expect_err("stream error must surface");
        assert_eq!(err, "disk went away");
    }

    #[test]
    fn one_shard_matches_unsharded_replay() {
        // With a single shard the partition is the whole trace and the
        // aggregate must equal a plain instrumented replay at the same
        // capacity.
        let sharded = sample_sharded(1);
        let report = run_sharded(PolicyKind::Lru, 4_000, &sharded, 7, BatchMode::Off);
        let trace = sharded.shards[0].to_requests();
        let ctx = TraceCtx::new(&trace, 7);
        let plain = PolicyKind::Lru.run_monomorphized_columns(4_000, &sharded.shards[0], &ctx);
        assert_eq!(report.aggregate.hits, plain.hits);
        assert_eq!(report.aggregate.misses, plain.misses);
        assert_eq!(report.aggregate.hit_bytes, plain.hit_bytes);
        assert_eq!(report.aggregate.miss_bytes, plain.miss_bytes);
    }
}
