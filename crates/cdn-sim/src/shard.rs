//! Sharded multi-core replay: one policy instance per key partition,
//! replayed on dedicated threads, aggregated at the end.
//!
//! The unit of parallelism is the shard, not the request: each shard owns
//! a private [`cdn_sim::PolicyKind`](crate::PolicyKind) instance and
//! replays its order-preserving partition (built by
//! [`cdn_trace::partition_columns`]) with zero cross-thread communication.
//! The merge is pure arithmetic over per-shard ledgers, so the threaded
//! aggregate is *provably* equal to replaying each partition serially —
//! [`run_sharded`] and [`run_sharded_serial`] produce identical
//! [`AggregateMeasurement`]s (exact `u64` equality, property-tested in
//! `tests/shard_check.rs`).
//!
//! What sharding changes, honestly: each shard manages `capacity / N`
//! bytes over *its keys only*, so the aggregate miss ratio is not the
//! unsharded instance's miss ratio — hot keys can no longer displace cold
//! keys on other shards. Both numbers are real; the bench reports them
//! side by side (DESIGN.md §15).

use std::time::Instant;

use cdn_trace::{ShardedTrace, TraceColumns};

use crate::runner::{BatchMode, RunMeasurement, TraceCtx};
use crate::PolicyKind;

/// Ledger-level aggregate of a sharded replay — the exact counters, not
/// ratios, so equality against a reference decomposition is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggregateMeasurement {
    /// Requests across all shards.
    pub requests: u64,
    /// Hits across all shards.
    pub hits: u64,
    /// Misses (rejections included) across all shards.
    pub misses: u64,
    /// Bytes served from cache across all shards.
    pub hit_bytes: u64,
    /// Bytes missed to origin across all shards.
    pub miss_bytes: u64,
    /// Sum of per-shard peak policy-metadata bytes.
    pub peak_memory_bytes: usize,
    /// Sum of per-shard resident objects at end of replay.
    pub resident_objects: usize,
}

impl AggregateMeasurement {
    /// Object miss ratio of the merged ledger.
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }

    /// Byte miss ratio of the merged ledger.
    pub fn byte_miss_ratio(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.miss_bytes as f64 / total as f64
        }
    }

    fn absorb(&mut self, m: &RunMeasurement) {
        self.requests += m.requests();
        self.hits += m.hits;
        self.misses += m.misses;
        self.hit_bytes += m.hit_bytes;
        self.miss_bytes += m.miss_bytes;
        self.peak_memory_bytes += m.peak_memory_bytes;
        self.resident_objects += m.resident_objects;
    }
}

/// Result of replaying a [`ShardedTrace`] (threaded or serial reference).
#[derive(Debug, Clone)]
pub struct ShardedRunReport {
    /// Per-shard measurements, indexed by shard.
    pub per_shard: Vec<RunMeasurement>,
    /// Merged ledgers (exactly the sum of `per_shard`).
    pub aggregate: AggregateMeasurement,
    /// Wall-clock seconds of the replay region: threaded span for
    /// [`run_sharded`], sum of per-shard replays for
    /// [`run_sharded_serial`]. Context building (next-access tables) is
    /// excluded from both — it is a per-shard preprocessing pass, not
    /// replay.
    pub wall_secs: f64,
}

impl ShardedRunReport {
    /// Aggregate requests per wall-clock second over the replay region.
    pub fn aggregate_tps(&self) -> f64 {
        self.aggregate.requests as f64 / self.wall_secs.max(1e-9)
    }
}

/// Shard columns re-ticked to local positions `0..len`, plus their replay
/// contexts — both built outside the timed region (preprocessing, not
/// replay).
///
/// The partitioner preserves original global ticks (it is a faithful
/// subsequence extractor), but replay contexts index next-access tables
/// positionally and [`cdn_policies::replacement::BeladyPolicy`] requires
/// `req.tick` to be that position. Localizing is a monotone renumbering
/// within each shard, so relative request order — the thing cache
/// outcomes depend on — is untouched, and both the threaded and serial
/// paths see the identical localized stream.
fn localized_shards(sharded: &ShardedTrace, seed: u64) -> Vec<(TraceColumns, TraceCtx)> {
    sharded
        .shards
        .iter()
        .map(|cols| {
            let mut local = cols.clone();
            for (i, t) in local.ticks.iter_mut().enumerate() {
                *t = i as u64;
            }
            let requests = local.to_requests();
            let ctx = TraceCtx::new(&requests, seed);
            (local, ctx)
        })
        .collect()
}

fn replay_one(
    kind: PolicyKind,
    per_shard_capacity: u64,
    cols: &TraceColumns,
    ctx: &TraceCtx,
    mode: BatchMode,
) -> RunMeasurement {
    kind.replay_batched(per_shard_capacity, cols, ctx, mode)
}

fn merge(per_shard: Vec<RunMeasurement>, wall_secs: f64) -> ShardedRunReport {
    let mut aggregate = AggregateMeasurement::default();
    for m in &per_shard {
        aggregate.absorb(m);
    }
    ShardedRunReport {
        per_shard,
        aggregate,
        wall_secs,
    }
}

/// Replay every shard on its own dedicated thread (one thread per shard,
/// even above `available_parallelism` — the OS time-slices and the bench
/// reports the degradation honestly rather than hiding it).
///
/// `total_capacity` is split evenly: each shard's policy instance manages
/// `total_capacity / shards` bytes. Replays are independent and
/// deterministic, so the aggregate equals [`run_sharded_serial`] exactly.
pub fn run_sharded(
    kind: PolicyKind,
    total_capacity: u64,
    sharded: &ShardedTrace,
    seed: u64,
    mode: BatchMode,
) -> ShardedRunReport {
    let n = sharded.shard_count();
    assert!(n > 0, "run_sharded: no shards");
    let per_shard_capacity = (total_capacity / n as u64).max(1);
    let prepared = localized_shards(sharded, seed);
    let start = Instant::now();
    let per_shard: Vec<RunMeasurement> = std::thread::scope(|s| {
        let handles: Vec<_> = prepared
            .iter()
            .map(|(cols, ctx)| {
                s.spawn(move || replay_one(kind, per_shard_capacity, cols, ctx, mode))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard replay thread panicked"))
            .collect()
    });
    merge(per_shard, start.elapsed().as_secs_f64())
}

/// The reference decomposition: replay each partition serially on the
/// calling thread, identical per-shard work, summed wall time. This is
/// what the sharded aggregate is proven equal against, and the serial
/// baseline of the scaling curve.
pub fn run_sharded_serial(
    kind: PolicyKind,
    total_capacity: u64,
    sharded: &ShardedTrace,
    seed: u64,
    mode: BatchMode,
) -> ShardedRunReport {
    let n = sharded.shard_count();
    assert!(n > 0, "run_sharded_serial: no shards");
    let per_shard_capacity = (total_capacity / n as u64).max(1);
    let prepared = localized_shards(sharded, seed);
    let mut wall = 0f64;
    let per_shard: Vec<RunMeasurement> = prepared
        .iter()
        .map(|(cols, ctx)| {
            let start = Instant::now();
            let m = replay_one(kind, per_shard_capacity, cols, ctx, mode);
            wall += start.elapsed().as_secs_f64();
            m
        })
        .collect();
    merge(per_shard, wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::partition_columns;

    fn sample_sharded(n: usize) -> ShardedTrace {
        let reqs: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i * 13 % 700, 1 + i % 40)).collect();
        let trace = cdn_cache::object::micro_trace(&reqs);
        partition_columns(&TraceColumns::from_requests(&trace), n)
    }

    #[test]
    fn threaded_equals_serial_exactly() {
        for shards in [1usize, 2, 3, 4] {
            let sharded = sample_sharded(shards);
            for kind in [PolicyKind::Lru, PolicyKind::Scip] {
                let threaded = run_sharded(kind, 4_000, &sharded, 7, BatchMode::Off);
                let serial = run_sharded_serial(kind, 4_000, &sharded, 7, BatchMode::Off);
                assert_eq!(
                    threaded.aggregate, serial.aggregate,
                    "{kind:?} at {shards} shards"
                );
                for (t, s) in threaded.per_shard.iter().zip(&serial.per_shard) {
                    assert_eq!(t.hits, s.hits);
                    assert_eq!(t.misses, s.misses);
                    assert_eq!(t.hit_bytes, s.hit_bytes);
                    assert_eq!(t.miss_bytes, s.miss_bytes);
                }
            }
        }
    }

    #[test]
    fn batched_mode_does_not_change_aggregates() {
        let sharded = sample_sharded(2);
        let plain = run_sharded(PolicyKind::Lru, 4_000, &sharded, 7, BatchMode::Off);
        let batched = run_sharded(PolicyKind::Lru, 4_000, &sharded, 7, BatchMode::Fixed(8));
        assert_eq!(plain.aggregate, batched.aggregate);
    }

    #[test]
    fn aggregate_covers_every_request() {
        let sharded = sample_sharded(4);
        let report = run_sharded(PolicyKind::Lru, 4_000, &sharded, 7, BatchMode::Off);
        assert_eq!(report.aggregate.requests, sharded.total_requests());
        assert_eq!(
            report.aggregate.hits + report.aggregate.misses,
            report.aggregate.requests
        );
        assert!(report.aggregate_tps() > 0.0);
        let ratio = report.aggregate.miss_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn one_shard_matches_unsharded_replay() {
        // With a single shard the partition is the whole trace and the
        // aggregate must equal a plain instrumented replay at the same
        // capacity.
        let sharded = sample_sharded(1);
        let report = run_sharded(PolicyKind::Lru, 4_000, &sharded, 7, BatchMode::Off);
        let trace = sharded.shards[0].to_requests();
        let ctx = TraceCtx::new(&trace, 7);
        let plain = PolicyKind::Lru.run_monomorphized_columns(4_000, &sharded.shards[0], &ctx);
        assert_eq!(report.aggregate.hits, plain.hits);
        assert_eq!(report.aggregate.misses, plain.misses);
        assert_eq!(report.aggregate.hit_bytes, plain.hit_bytes);
        assert_eq!(report.aggregate.miss_bytes, plain.miss_bytes);
    }
}
