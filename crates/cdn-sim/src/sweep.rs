//! Parallel execution of experiment grids, with per-job fault isolation.
//!
//! Lock-free executor: workers claim job indices from a single atomic
//! cursor (one `fetch_add` per job) and write each result into that job's
//! own pre-sized slot, so neither the work-distribution nor the
//! completion path takes a lock. Results come back in input order.
//!
//! Two entry points share that machinery:
//!
//! - [`parallel_runs`] — the historical strict API: a panicking job
//!   aborts the whole sweep (propagated when the scope joins its
//!   workers). Use for small grids where partial results are useless.
//! - [`run_jobs`] — fault-tolerant: each attempt runs under
//!   `catch_unwind`, panics are converted to [`JobOutcome::Panicked`]
//!   after a bounded number of retries ([`SweepConfig::max_attempts`],
//!   with linear backoff), and the sweep always completes, reporting
//!   exactly which cells failed. `SweepConfig::strict` restores the
//!   abort-on-first-failure semantics for callers that want the old
//!   behaviour with the new retry layer.
//!
//! Worker count: `available_parallelism`, overridable with the
//! `CDN_SIM_THREADS` environment variable (clamped to ≥ 1); the
//! `unwrap_or(4)` fallback only applies on platforms where the available
//! parallelism cannot be queried at all.
//!
//! Under the `fault-injection` feature, [`run_jobs`] evaluates the
//! `sweep.job` failpoint (key = job index) inside the isolation boundary
//! before each attempt, so tests can inject deterministic panics —
//! including transient ones that exercise the retry path.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Failpoint evaluated before each job attempt (key = job index).
#[cfg(feature = "fault-injection")]
pub const FP_SWEEP_JOB: &str = "sweep.job";

/// Worker-thread count: `CDN_SIM_THREADS` if set and parseable, else the
/// machine's available parallelism, else 4 (the documented fallback for
/// platforms where `available_parallelism` errors, e.g. restricted
/// sandboxes), clamped to `jobs` so tiny sweeps don't spawn idle threads.
fn worker_count(jobs: usize) -> usize {
    std::env::var("CDN_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .min(jobs.max(1))
}

/// One job's cell pair: the (taken-once) closure and its result.
struct Slot<F, T> {
    job: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<T>>,
}

// Safety: a slot index is handed out by `fetch_add` exactly once, so at
// most one worker ever touches a given slot's cells; the parent thread
// only reads results after `thread::scope` has joined every worker.
unsafe impl<F: Send, T: Send> Sync for Slot<F, T> {}

/// Run `jobs` closures on worker threads (see [`worker_count`]) and
/// collect results in input order. Panics in a job abort the sweep —
/// prefer [`run_jobs`] for long grids where losing completed work to one
/// bad cell is unacceptable.
pub fn parallel_runs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n_workers = worker_count(jobs.len());
    let slots: Vec<Slot<F, T>> = jobs
        .into_iter()
        .map(|f| Slot {
            job: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= slots.len() {
                    break;
                }
                let slot = &slots[idx];
                // Safety: `idx` was claimed exactly once (see Slot).
                let f = unsafe { (*slot.job.get()).take() }.expect("slot claimed twice");
                let out = f();
                unsafe { *slot.result.get() = Some(out) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.result.into_inner().expect("every job ran"))
        .collect()
}

/// How a fault-tolerant sweep treats failing jobs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Attempts per job (≥ 1). 1 means no retry; transient failures get
    /// `max_attempts - 1` more chances before the job is declared failed.
    pub max_attempts: u32,
    /// Sleep before retry `k` is `backoff * k` (linear). Zero by default:
    /// simulation faults are rarely time-dependent, and tests should not
    /// wait.
    pub backoff: Duration,
    /// Abort (re-panic) after the sweep if any job exhausted its
    /// attempts — the historical `parallel_runs` semantics, but with
    /// retries and with every other job's result still computed.
    pub strict: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            max_attempts: 2,
            backoff: Duration::ZERO,
            strict: false,
        }
    }
}

impl SweepConfig {
    /// Config from the environment: `CDN_SIM_RETRIES` (extra attempts
    /// beyond the first, default 1), `CDN_SIM_STRICT` (non-empty and not
    /// `0` aborts on failed cells). Thread count is read separately (see
    /// module docs).
    pub fn from_env() -> Self {
        let retries = std::env::var("CDN_SIM_RETRIES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(1);
        let strict = std::env::var("CDN_SIM_STRICT").is_ok_and(|v| !v.is_empty() && v != "0");
        SweepConfig {
            max_attempts: retries.saturating_add(1).max(1),
            strict,
            ..SweepConfig::default()
        }
    }

    /// Today's abort semantics: one attempt, re-panic on any failure.
    pub fn strict() -> Self {
        SweepConfig {
            max_attempts: 1,
            strict: true,
            ..SweepConfig::default()
        }
    }
}

/// What became of one sweep job.
#[derive(Debug, Clone)]
pub enum JobOutcome<T> {
    /// Succeeded on the first attempt.
    Ok(T),
    /// Succeeded after one or more retries (`attempts` counts every run).
    Retried {
        /// The successful result.
        value: T,
        /// Total attempts including the successful one.
        attempts: u32,
    },
    /// Every attempt panicked; the job contributes no result.
    Panicked {
        /// Attempts made before giving up.
        attempts: u32,
        /// Panic payload of the final attempt, stringified.
        message: String,
    },
    /// Result restored from a checkpoint sidecar; the job never ran.
    Cached(T),
}

impl<T> JobOutcome<T> {
    /// The successful value, if any.
    pub fn value(&self) -> Option<&T> {
        match self {
            JobOutcome::Ok(v) | JobOutcome::Retried { value: v, .. } | JobOutcome::Cached(v) => {
                Some(v)
            }
            JobOutcome::Panicked { .. } => None,
        }
    }

    /// The successful value by move, if any.
    pub fn into_value(self) -> Option<T> {
        match self {
            JobOutcome::Ok(v) | JobOutcome::Retried { value: v, .. } | JobOutcome::Cached(v) => {
                Some(v)
            }
            JobOutcome::Panicked { .. } => None,
        }
    }

    /// True when the job produced no result.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Panicked { .. })
    }
}

/// Per-job outcomes of a fault-tolerant sweep, in input order.
#[derive(Debug)]
pub struct SweepReport<T> {
    /// One outcome per submitted job.
    pub outcomes: Vec<JobOutcome<T>>,
}

impl<T> SweepReport<T> {
    /// `(index, final panic message)` of every failed cell.
    pub fn failures(&self) -> Vec<(usize, &str)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                JobOutcome::Panicked { message, .. } => Some((i, message.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Count of jobs that produced a result (including cached ones).
    pub fn succeeded(&self) -> usize {
        self.outcomes.len() - self.failures().len()
    }

    /// Count of jobs restored from a checkpoint instead of running.
    pub fn cached(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, JobOutcome::Cached(_)))
            .count()
    }

    /// Count of jobs that needed at least one retry.
    pub fn retried(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, JobOutcome::Retried { .. }))
            .count()
    }

    /// One-line human summary ("50 jobs: 45 ok, 2 retried, 3 failed").
    pub fn summary(&self) -> String {
        let failed = self.failures().len();
        let cached = self.cached();
        let retried = self.retried();
        let ok = self.outcomes.len() - failed - cached - retried;
        let mut s = format!("{} jobs: {ok} ok", self.outcomes.len());
        if cached > 0 {
            s.push_str(&format!(", {cached} from checkpoint"));
        }
        if retried > 0 {
            s.push_str(&format!(", {retried} retried"));
        }
        s.push_str(&format!(", {failed} failed"));
        s
    }

    /// Successful values in input order, `None` holding failed cells'
    /// places.
    pub fn into_values(self) -> Vec<Option<T>> {
        self.outcomes
            .into_iter()
            .map(JobOutcome::into_value)
            .collect()
    }

    /// All values, panicking with the failure summary if any cell failed
    /// — the strict unwrap for callers that need a complete grid.
    pub fn expect_complete(self, what: &str) -> Vec<T> {
        let failures = self.failures();
        if !failures.is_empty() {
            let (idx, msg) = failures[0];
            panic!(
                "{what}: {} of {} jobs failed (first: job {idx}: {msg})",
                failures.len(),
                self.outcomes.len()
            );
        }
        self.outcomes
            .into_iter()
            .map(|o| o.into_value().expect("no failures"))
            .collect()
    }
}

thread_local! {
    /// Set while a job attempt runs under `catch_unwind`, so the global
    /// panic hook stays quiet for isolated (recoverable) panics.
    static ISOLATING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once) a panic hook that suppresses the default backtrace spew
/// for panics the sweep executor is about to catch and account for.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !ISOLATING.with(|f| f.get()) {
                previous(info);
            }
        }));
    });
}

/// Stringify a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one job with bounded retries; returns its outcome.
///
/// The closure runs under `catch_unwind` each attempt. Jobs must be
/// *retry-safe*: they rebuild all per-run state internally (every
/// `run_policy` cell does — the policy is constructed inside the call),
/// which is also what makes `AssertUnwindSafe` sound here.
fn attempt_job<T>(
    f: &mut (impl FnMut() -> T + Send),
    idx: usize,
    cfg: &SweepConfig,
) -> JobOutcome<T> {
    let max_attempts = cfg.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let caught = {
            ISOLATING.with(|flag| flag.set(true));
            let r = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                cdn_cache::fault::maybe_panic(FP_SWEEP_JOB, idx as u64);
                #[cfg(not(feature = "fault-injection"))]
                let _ = idx;
                f()
            }));
            ISOLATING.with(|flag| flag.set(false));
            r
        };
        match caught {
            Ok(value) if attempt == 1 => return JobOutcome::Ok(value),
            Ok(value) => {
                return JobOutcome::Retried {
                    value,
                    attempts: attempt,
                }
            }
            Err(payload) => {
                if attempt >= max_attempts {
                    return JobOutcome::Panicked {
                        attempts: attempt,
                        message: panic_message(payload),
                    };
                }
                if !cfg.backoff.is_zero() {
                    std::thread::sleep(cfg.backoff * attempt);
                }
            }
        }
    }
}

/// Run `jobs` with per-job panic isolation and bounded retry; the sweep
/// always completes and the report names exactly the failed cells.
///
/// Jobs are `FnMut` (not `FnOnce`) because a retried job runs more than
/// once; each invocation must rebuild its own state.
///
/// # Panics
/// Only in [`SweepConfig::strict`] mode, after all jobs have finished, if
/// any job exhausted its attempts.
pub fn run_jobs<T, F>(jobs: Vec<F>, cfg: &SweepConfig) -> SweepReport<T>
where
    T: Send,
    F: FnMut() -> T + Send,
{
    install_quiet_hook();
    let n_workers = worker_count(jobs.len());
    let slots: Vec<Slot<F, JobOutcome<T>>> = jobs
        .into_iter()
        .map(|f| Slot {
            job: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= slots.len() {
                    break;
                }
                let slot = &slots[idx];
                // Safety: `idx` was claimed exactly once (see Slot).
                let mut f = unsafe { (*slot.job.get()).take() }.expect("slot claimed twice");
                let outcome = attempt_job(&mut f, idx, cfg);
                unsafe { *slot.result.get() = Some(outcome) };
            });
        }
    });
    let report = SweepReport {
        outcomes: slots
            .into_iter()
            .map(|s| s.result.into_inner().expect("every job ran"))
            .collect(),
    };
    if cfg.strict {
        let failures = report.failures();
        if let Some((idx, msg)) = failures.first() {
            panic!(
                "strict sweep: {} of {} jobs failed (first: job {idx}: {msg})",
                failures.len(),
                report.outcomes.len()
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..50)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_runs(jobs);
        assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(parallel_runs(jobs).is_empty());
        let jobs: Vec<Box<dyn FnMut() -> u32 + Send>> = Vec::new();
        assert!(run_jobs(jobs, &SweepConfig::default()).outcomes.is_empty());
    }

    #[test]
    #[should_panic]
    fn job_panic_aborts_strict_sweep() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0u32..8)
            .map(|i| {
                Box::new(move || {
                    if i == 5 {
                        panic!("job failure");
                    }
                    i
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        parallel_runs(jobs);
    }

    #[test]
    fn more_jobs_than_workers() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..1000)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_runs(jobs);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 1000);
    }

    #[test]
    fn thread_env_override_is_respected_and_safe() {
        // worker_count is pure arithmetic over the env value; exercise the
        // clamps directly.
        assert!(worker_count(1) == 1);
        assert!(worker_count(0) >= 1);
        assert!(worker_count(10_000) >= 1);
    }

    #[test]
    fn isolated_sweep_survives_panics_and_reports_them() {
        let jobs: Vec<Box<dyn FnMut() -> u32 + Send>> = (0u32..10)
            .map(|i| {
                Box::new(move || {
                    if i % 4 == 1 {
                        panic!("cell {i} down");
                    }
                    i * 10
                }) as Box<dyn FnMut() -> u32 + Send>
            })
            .collect();
        let cfg = SweepConfig {
            max_attempts: 2,
            ..SweepConfig::default()
        };
        let report = run_jobs(jobs, &cfg);
        assert_eq!(report.outcomes.len(), 10);
        let failures = report.failures();
        assert_eq!(
            failures.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
        assert!(failures.iter().all(|(_, m)| m.contains("down")));
        assert_eq!(report.succeeded(), 7);
        for (i, o) in report.outcomes.iter().enumerate() {
            match o {
                JobOutcome::Ok(v) => assert_eq!(*v, i as u32 * 10),
                JobOutcome::Panicked { attempts, .. } => assert_eq!(*attempts, 2),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(0)).collect();
        let jobs: Vec<_> = (0usize..6)
            .map(|i| {
                let counter = &counters[i];
                move || {
                    let run = counter.fetch_add(1, Ordering::SeqCst);
                    // Jobs 2 and 4 fail on their first attempt only.
                    if (i == 2 || i == 4) && run == 0 {
                        panic!("transient");
                    }
                    i
                }
            })
            .collect();
        let cfg = SweepConfig {
            max_attempts: 3,
            ..SweepConfig::default()
        };
        let report = run_jobs(jobs, &cfg);
        assert!(report.failures().is_empty());
        assert_eq!(report.retried(), 2);
        for (i, o) in report.outcomes.iter().enumerate() {
            match o {
                JobOutcome::Ok(v) => assert_eq!(*v, i),
                JobOutcome::Retried { value, attempts } => {
                    assert_eq!(*value, i);
                    assert_eq!(*attempts, 2);
                    assert!(i == 2 || i == 4);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(report.summary(), "6 jobs: 4 ok, 2 retried, 0 failed");
    }

    #[test]
    #[should_panic(expected = "strict sweep")]
    fn strict_mode_aborts_after_completion() {
        let jobs: Vec<Box<dyn FnMut() -> u32 + Send>> = (0u32..4)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("unrecoverable");
                    }
                    i
                }) as Box<dyn FnMut() -> u32 + Send>
            })
            .collect();
        run_jobs(jobs, &SweepConfig::strict());
    }

    #[test]
    fn expect_complete_passes_clean_grids() {
        let jobs: Vec<_> = (0u32..5).map(|i| move || i + 1).collect();
        let vals = run_jobs(jobs, &SweepConfig::default()).expect_complete("grid");
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn actually_parallel_under_contention() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        parallel_runs(jobs);
        // On any multi-core runner at least two jobs overlap.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(PEAK.load(Ordering::SeqCst) >= 2);
        }
    }
}
