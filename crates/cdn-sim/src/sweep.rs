//! Parallel execution of experiment grids.

use crossbeam::thread;

/// Run `jobs` closures on up to `available_parallelism` worker threads and
/// collect results in input order. Panics in a job abort the sweep.
pub fn parallel_runs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    {
        let queue: parking_lot::Mutex<Vec<(usize, F)>> =
            parking_lot::Mutex::new(jobs.into_iter().enumerate().rev().collect());
        let results = parking_lot::Mutex::new(&mut results);
        thread::scope(|s| {
            for _ in 0..n_workers {
                s.spawn(|_| loop {
                    let job = queue.lock().pop();
                    match job {
                        Some((idx, f)) => {
                            let out = f();
                            results.lock()[idx] = Some(out);
                        }
                        None => break,
                    }
                });
            }
        })
        .expect("sweep worker panicked");
    }
    results
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..50)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_runs(jobs);
        assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(parallel_runs(jobs).is_empty());
    }

    #[test]
    fn actually_parallel_under_contention() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> () + Send>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        parallel_runs(jobs);
        // On any multi-core runner at least two jobs overlap.
        if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1 {
            assert!(PEAK.load(Ordering::SeqCst) >= 2);
        }
    }
}
