//! Parallel execution of experiment grids.
//!
//! Lock-free executor: workers claim job indices from a single atomic
//! cursor (one `fetch_add` per job) and write each result into that job's
//! own pre-sized slot, so neither the work-distribution nor the
//! completion path takes a lock. Results come back in input order. A
//! panicking job aborts the whole sweep (propagated when the scope joins
//! its workers).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One job's cell pair: the (taken-once) closure and its result.
struct Slot<F, T> {
    job: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<T>>,
}

// Safety: a slot index is handed out by `fetch_add` exactly once, so at
// most one worker ever touches a given slot's cells; the parent thread
// only reads results after `thread::scope` has joined every worker.
unsafe impl<F: Send, T: Send> Sync for Slot<F, T> {}

/// Run `jobs` closures on up to `available_parallelism` worker threads and
/// collect results in input order. Panics in a job abort the sweep.
pub fn parallel_runs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let slots: Vec<Slot<F, T>> = jobs
        .into_iter()
        .map(|f| Slot {
            job: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= slots.len() {
                    break;
                }
                let slot = &slots[idx];
                // Safety: `idx` was claimed exactly once (see Slot).
                let f = unsafe { (*slot.job.get()).take() }.expect("slot claimed twice");
                let out = f();
                unsafe { *slot.result.get() = Some(out) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.result.into_inner().expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..50)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_runs(jobs);
        assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(parallel_runs(jobs).is_empty());
    }

    #[test]
    #[should_panic]
    fn job_panic_aborts_sweep() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0u32..8)
            .map(|i| {
                Box::new(move || {
                    if i == 5 {
                        panic!("job failure");
                    }
                    i
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        parallel_runs(jobs);
    }

    #[test]
    fn more_jobs_than_workers() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..1000)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = parallel_runs(jobs);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 1000);
    }

    #[test]
    fn actually_parallel_under_contention() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        parallel_runs(jobs);
        // On any multi-core runner at least two jobs overlap.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(PEAK.load(Ordering::SeqCst) >= 2);
        }
    }
}
