//! Figure 6 under chaos: replay the TDC deployment timeline through the
//! resilient serving path under calm / origin-brownout / OC-churn fault
//! schedules, SCIP vs LRU, and persist markdown + JSON under `results/`.
//!
//! Scale knobs: `TDC_CHAOS_REQUESTS` / `TDC_CHAOS_SEED` (falling back to
//! `REPRO_REQUESTS` / `REPRO_SEED`).
//!
//! Exits nonzero if the calm replay is not bit-identical to the plain
//! serving path or if calm availability is below 100 % — the resilience
//! machinery must be free when nothing fails.

use std::fs;

fn env_u64(key: &str, fallback: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

fn main() {
    let requests = env_u64("TDC_CHAOS_REQUESTS", cdn_sim::default_requests());
    let seed = env_u64("TDC_CHAOS_SEED", cdn_sim::default_seed());
    let study = cdn_sim::experiments::fig6_chaos(requests, seed);

    let table = cdn_sim::or_die(study.table(), "rendering chaos table");
    table.print();
    let tsv = cdn_sim::or_die(table.save_tsv("fig6_chaos"), "writing results TSV");

    let dir = cdn_sim::table::results_dir();
    cdn_sim::or_die(fs::create_dir_all(&dir), "creating results dir");
    let md = dir.join("fig6_chaos.md");
    cdn_sim::or_die(fs::write(&md, study.to_markdown()), "writing markdown");
    let json = dir.join("fig6_chaos.json");
    cdn_sim::or_die(fs::write(&json, study.to_json()), "writing json");
    eprintln!(
        "saved {}, {} and {}",
        tsv.display(),
        md.display(),
        json.display()
    );

    if !study.calm_matches_plain {
        eprintln!("FAIL: calm resilient replay diverged from the plain serving path");
        std::process::exit(1);
    }
    if !study.calm_fully_available() {
        eprintln!("FAIL: calm availability below 100%");
        std::process::exit(1);
    }
}
