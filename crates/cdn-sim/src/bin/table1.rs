//! Regenerate Table 1 (workload summary).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::table1(&bench);
    t.print();
    let p = t.save_tsv("table1").expect("write results");
    eprintln!("saved {}", p.display());
}
