//! Regenerate Table 1 (workload summary).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::table1(&bench), "table1");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("table1"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
