//! Run the beyond-paper admission-family comparison.
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(
        cdn_sim::experiments::admission_comparison(&bench),
        "admission_comparison",
    );
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("admission"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
