//! Run the beyond-paper admission-family comparison.
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::admission_comparison(&bench);
    t.print();
    let p = t.save_tsv("admission").expect("write results");
    eprintln!("saved {}", p.display());
}
