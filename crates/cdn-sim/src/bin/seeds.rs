//! Seed-sensitivity check of the headline SCIP-vs-LRU result.
fn main() {
    let t = cdn_sim::experiments::seed_variance(cdn_sim::default_requests());
    t.print();
    let p = t.save_tsv("seeds").expect("write results");
    eprintln!("saved {}", p.display());
}
