//! Seed-sensitivity check of the headline SCIP-vs-LRU result.
fn main() {
    let t = cdn_sim::or_die(
        cdn_sim::experiments::seed_variance(cdn_sim::default_requests()),
        "seed variance",
    );
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("seeds"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
