//! Regenerate Figure 3 (oracle placement curves).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig3(&bench), "fig3");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig3"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
