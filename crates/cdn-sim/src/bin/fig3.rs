//! Regenerate Figure 3 (oracle placement curves).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig3(&bench);
    t.print();
    let p = t.save_tsv("fig3").expect("write results");
    eprintln!("saved {}", p.display());
}
