//! Replay a trace file through one or more policies.
//!
//! ```bash
//! cargo run --release -p cdn-sim --bin replaytool -- trace.bin 0.05 SCIP LRU ASC-IP
//! ```
//!
//! The second argument is the cache size as a fraction of the trace's
//! working-set size; remaining arguments are policy labels (default: a
//! representative set). Accepts `.bin` and `.csv` traces.
//!
//! Unreadable or corrupt traces exit with status 1 and a structured
//! [`cdn_trace::TraceError`] message. Policies run through the
//! fault-tolerant sweep executor: a panicking policy prints a `FAIL` row
//! instead of killing the whole replay, and setting `CDN_SIM_CHECKPOINT`
//! to a sidecar path skips already-measured (policy, size, trace) cells
//! on re-runs.

use std::path::Path;
use std::process::exit;

use cdn_sim::checkpoint::run_checkpointed;
use cdn_sim::runner::{run_policy, PolicyKind, TraceCtx};
use cdn_sim::sweep::SweepConfig;
use cdn_sim::Checkpoint;
use cdn_trace::{TraceColumns, TraceStats};

fn parse_policy(label: &str) -> Option<PolicyKind> {
    let all = [
        PolicyKind::Lru,
        PolicyKind::Lip,
        PolicyKind::Bip,
        PolicyKind::Dip,
        PolicyKind::Pipp,
        PolicyKind::Dta,
        PolicyKind::Ship,
        PolicyKind::Dgippr,
        PolicyKind::Daaip,
        PolicyKind::AscIp,
        PolicyKind::Sci,
        PolicyKind::Scip,
        PolicyKind::LruK,
        PolicyKind::S4Lru,
        PolicyKind::SsLru,
        PolicyKind::Gdsf,
        PolicyKind::Lhd,
        PolicyKind::Arc,
        PolicyKind::LeCar,
        PolicyKind::Cacheus,
        PolicyKind::Lrb,
        PolicyKind::GlCache,
        PolicyKind::TwoQ,
        PolicyKind::TinyLfu,
        PolicyKind::AdaptSize,
        PolicyKind::Belady,
        PolicyKind::LruKScip,
        PolicyKind::LruKAscIp,
        PolicyKind::LrbScip,
        PolicyKind::LrbAscIp,
    ];
    all.into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(label))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: replaytool <trace.bin|trace.csv> <wss-fraction> [policy...]");
        exit(2);
    }
    let path = Path::new(&args[0]);
    let fraction: f64 = args[1].parse().unwrap_or_else(|_| {
        eprintln!("bad fraction {}", args[1]);
        exit(2);
    });
    let trace = match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => cdn_trace::io::read_binary(path),
        Some("csv") => cdn_trace::io::read_csv(path),
        _ => {
            eprintln!("trace must end in .bin or .csv");
            exit(2);
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("error: failed to read trace {}: {e}", path.display());
        exit(1);
    });
    if let Err(e) = TraceColumns::from_requests(&trace).validate() {
        eprintln!("error: trace {} failed validation: {e}", path.display());
        exit(1);
    }
    let stats = TraceStats::compute(&trace);
    let cap = stats.cache_bytes_for_fraction(fraction);
    println!("{stats}");
    println!(
        "cache: {:.1} MB ({:.2}% of WSS)\n",
        cap as f64 / 1e6,
        fraction * 100.0
    );

    let policies: Vec<PolicyKind> = if args.len() > 2 {
        args[2..]
            .iter()
            .map(|l| {
                parse_policy(l).unwrap_or_else(|| {
                    eprintln!("unknown policy {l}");
                    exit(2);
                })
            })
            .collect()
    } else {
        vec![
            PolicyKind::Belady,
            PolicyKind::Scip,
            PolicyKind::Lru,
            PolicyKind::AscIp,
            PolicyKind::S4Lru,
        ]
    };

    let seed = 42u64;
    let ctx = TraceCtx::new(&trace, seed);
    let trace_hash = cdn_trace::trace_content_hash(&trace);
    let checkpoint = Checkpoint::from_env();
    let cells: Vec<_> = policies
        .iter()
        .map(|&kind| {
            let trace = trace.clone();
            let ctx = ctx.clone();
            (kind.fingerprint(cap, trace_hash, seed), move || {
                run_policy(kind, cap, &trace, &ctx)
            })
        })
        .collect();
    let report = run_checkpointed(cells, checkpoint.as_ref(), &SweepConfig::from_env());
    let failed = !report.failures().is_empty();
    if failed || report.cached() > 0 {
        eprintln!("replay: {}", report.summary());
    }

    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>12}",
        "policy", "miss", "byte-miss", "ns/req", "peak-MB"
    );
    for (kind, m) in policies.iter().zip(report.into_values()) {
        match m {
            Some(m) => println!(
                "{:<14} {:>8.2}% {:>8.2}% {:>10.0} {:>12.1}",
                m.policy,
                m.miss_ratio * 100.0,
                m.byte_miss_ratio * 100.0,
                m.ns_per_request,
                m.peak_memory_bytes as f64 / 1e6
            ),
            None => println!(
                "{:<14} {:>9} {:>9} {:>10} {:>12}",
                kind.label(),
                "FAIL",
                "FAIL",
                "FAIL",
                "FAIL"
            ),
        }
    }
    if failed {
        exit(1);
    }
}
