//! Run the SCIP design-choice ablations (beyond the paper).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::ablations(&bench), "ablations");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("ablations"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
