//! Run the SCIP design-choice ablations (beyond the paper).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::ablations(&bench);
    t.print();
    let p = t.save_tsv("ablations").expect("write results");
    eprintln!("saved {}", p.display());
}
