//! Regenerate Figure 11 (resource use of replacement algorithms).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig11(&bench);
    t.print();
    let p = t.save_tsv("fig11").expect("write results");
    eprintln!("saved {}", p.display());
}
