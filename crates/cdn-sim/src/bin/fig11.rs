//! Regenerate Figure 11 (resource use of replacement algorithms).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig11(&bench), "fig11");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig11"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
