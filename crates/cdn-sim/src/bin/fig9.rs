//! Regenerate Figure 9 (resource use of insertion policies).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig9(&bench);
    t.print();
    let p = t.save_tsv("fig9").expect("write results");
    eprintln!("saved {}", p.display());
}
