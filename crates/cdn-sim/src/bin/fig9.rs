//! Regenerate Figure 9 (resource use of insertion policies).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig9(&bench), "fig9");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig9"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
