//! Regenerate Figure 8 (SCIP vs insertion policies).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig8(&bench);
    t.print();
    let p = t.save_tsv("fig8").expect("write results");
    eprintln!("saved {}", p.display());
}
