//! Regenerate Figure 8 (SCIP vs insertion policies).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig8(&bench), "fig8");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig8"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
