//! Regenerate Figure 4 (model decision accuracy).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig4(&bench), "fig4");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig4"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
