//! Regenerate Figure 4 (model decision accuracy).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig4(&bench);
    t.print();
    let p = t.save_tsv("fig4").expect("write results");
    eprintln!("saved {}", p.display());
}
