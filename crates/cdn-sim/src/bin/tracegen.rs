//! Generate a synthetic workload trace and write it to disk.
//!
//! ```bash
//! cargo run --release -p cdn-sim --bin tracegen -- cdn-w 1000000 out.bin [seed]
//! cargo run --release -p cdn-sim --bin tracegen -- cdn-t 500000 out.csv
//! ```
//!
//! The format is chosen by extension: `.bin` (compact binary) or `.csv`.

use std::path::Path;
use std::process::exit;

use cdn_trace::{TraceGenerator, TraceStats, Workload};

fn usage() -> ! {
    eprintln!("usage: tracegen <cdn-t|cdn-w|cdn-a> <requests> <out.bin|out.csv> [seed]");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        usage();
    }
    let workload = match args[0].as_str() {
        "cdn-t" => Workload::CdnT,
        "cdn-w" => Workload::CdnW,
        "cdn-a" => Workload::CdnA,
        other => {
            eprintln!("unknown workload {other}");
            usage();
        }
    };
    let requests: u64 = args[1].parse().unwrap_or_else(|_| usage());
    let path = Path::new(&args[2]);
    let seed: u64 = args
        .get(3)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(42);

    let trace = TraceGenerator::generate(workload.profile().config(requests, seed));
    let stats = TraceStats::compute(&trace);
    println!("{stats}");
    let result = match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => cdn_trace::io::write_binary(path, &trace),
        Some("csv") => cdn_trace::io::write_csv(path, &trace),
        _ => {
            eprintln!("output must end in .bin or .csv");
            exit(2);
        }
    };
    match result {
        Ok(()) => println!("wrote {} requests to {}", trace.len(), path.display()),
        Err(e) => {
            eprintln!("write failed: {e}");
            exit(1);
        }
    }
}
