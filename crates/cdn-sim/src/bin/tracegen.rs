//! Generate a synthetic workload trace and write it to disk.
//!
//! ```bash
//! cargo run --release -p cdn-sim --bin tracegen -- cdn-w 1000000 out.bin [seed]
//! cargo run --release -p cdn-sim --bin tracegen -- cdn-t 500000 out.csv
//! cargo run --release -p cdn-sim --bin tracegen -- --stream cdn-t 500000000 out.bin
//! ```
//!
//! The format is chosen by extension: `.bin` (compact binary) or `.csv`.
//!
//! Flags:
//!
//! - `--stream` — out-of-core generation: the trace goes straight to disk
//!   through the chunk-pipelined writer (`.bin`) or the streaming CSV
//!   writer (`.csv`) without ever materialising in RAM, so corpus size is
//!   bounded by disk, not memory. Byte-identical to the in-RAM path for
//!   `.bin` (pinned by `cdn-trace`'s stream tests). Whole-trace
//!   `TraceStats` need the full trace resident and are skipped with a
//!   note — never computed over a partial sample and passed off as exact.
//! - `--flash-crowd` — overlay the standard flash-crowd drift window
//!   (starts at n/4, lasts n/2, 50% share) on the workload's base config,
//!   matching the event schedule the streaming bench's big corpus uses.

use std::path::Path;
use std::process::exit;

use cdn_trace::{flash_crowd_window, TraceGenerator, TraceStats, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: tracegen [--stream] [--flash-crowd] <cdn-t|cdn-w|cdn-a> <requests> \
         <out.bin|out.csv> [seed]"
    );
    exit(2);
}

fn main() {
    let mut stream = false;
    let mut flash_crowd = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| match a.as_str() {
            "--stream" => {
                stream = true;
                false
            }
            "--flash-crowd" => {
                flash_crowd = true;
                false
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                usage();
            }
            _ => true,
        })
        .collect();
    if args.len() < 3 {
        usage();
    }
    let workload = match args[0].as_str() {
        "cdn-t" => Workload::CdnT,
        "cdn-w" => Workload::CdnW,
        "cdn-a" => Workload::CdnA,
        other => {
            eprintln!("unknown workload {other}");
            usage();
        }
    };
    let requests: u64 = args[1].parse().unwrap_or_else(|_| usage());
    let path = Path::new(&args[2]);
    let seed: u64 = args
        .get(3)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(42);

    let mut cfg = workload.profile().config(requests, seed);
    if flash_crowd {
        cfg.events = vec![flash_crowd_window(requests)];
    }

    enum Format {
        Bin,
        Csv,
    }
    let format = match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => Format::Bin,
        Some("csv") => Format::Csv,
        _ => {
            eprintln!("output must end in .bin or .csv");
            exit(2);
        }
    };

    if stream {
        // Out-of-core: no whole-trace residency, so no TraceStats.
        println!("streaming generation: whole-trace stats skipped (trace never held in RAM)");
        let written = match format {
            Format::Bin => cdn_trace::generate_binary(path, cfg),
            Format::Csv => cdn_trace::write_csv_stream(path, TraceGenerator::new(cfg)),
        };
        match written {
            Ok(n) => println!("wrote {n} requests to {}", path.display()),
            Err(e) => {
                eprintln!("write failed: {e}");
                exit(1);
            }
        }
        return;
    }

    let trace = TraceGenerator::generate(cfg);
    let stats = TraceStats::compute(&trace);
    println!("{stats}");
    let result = match format {
        Format::Bin => cdn_trace::io::write_binary(path, &trace),
        Format::Csv => cdn_trace::io::write_csv(path, &trace),
    };
    match result {
        Ok(()) => println!("wrote {} requests to {}", trace.len(), path.display()),
        Err(e) => {
            eprintln!("write failed: {e}");
            exit(1);
        }
    }
}
