//! Regenerate every table and figure in one run.
fn main() {
    use cdn_sim::experiments as exp;
    let bench = exp::Bench::default_scale();
    eprintln!(
        "running all experiments at {} requests/trace (REPRO_REQUESTS to change)",
        bench.requests
    );
    let t = exp::table1(&bench);
    t.print();
    t.save_tsv("table1").unwrap();
    for (name, table) in [
        ("fig1", exp::fig1(&bench)),
        ("fig3", exp::fig3(&bench)),
        ("fig4", exp::fig4(&bench)),
        ("fig7", exp::fig7(&bench)),
        ("fig8", exp::fig8(&bench)),
        ("fig9", exp::fig9(&bench)),
        ("fig10", exp::fig10(&bench)),
        ("fig11", exp::fig11(&bench)),
        ("fig12", exp::fig12(&bench)),
        ("ablations", exp::ablations(&bench)),
        ("admission", exp::admission_comparison(&bench)),
    ] {
        println!();
        table.print();
        table.save_tsv(name).unwrap();
    }
    let (summary, series) = exp::fig6(&bench);
    println!();
    summary.print();
    summary.save_tsv("fig6_summary").unwrap();
    series.save_tsv("fig6_series").unwrap();
    eprintln!("all tables saved under results/");
}
