//! Regenerate every table and figure in one run.
fn main() {
    use cdn_sim::experiments as exp;
    let bench = exp::Bench::default_scale();
    eprintln!(
        "running all experiments at {} requests/trace (REPRO_REQUESTS to change)",
        bench.requests
    );
    let t = cdn_sim::or_die(exp::table1(&bench), "table1");
    t.print();
    cdn_sim::or_die(t.save_tsv("table1"), "writing table1 TSV");
    for (name, table) in [
        ("fig1", cdn_sim::or_die(exp::fig1(&bench), "fig1")),
        ("fig3", cdn_sim::or_die(exp::fig3(&bench), "fig3")),
        ("fig4", cdn_sim::or_die(exp::fig4(&bench), "fig4")),
        ("fig7", cdn_sim::or_die(exp::fig7(&bench), "fig7")),
        ("fig8", cdn_sim::or_die(exp::fig8(&bench), "fig8")),
        ("fig9", cdn_sim::or_die(exp::fig9(&bench), "fig9")),
        ("fig10", cdn_sim::or_die(exp::fig10(&bench), "fig10")),
        ("fig11", cdn_sim::or_die(exp::fig11(&bench), "fig11")),
        ("fig12", cdn_sim::or_die(exp::fig12(&bench), "fig12")),
        (
            "ablations",
            cdn_sim::or_die(exp::ablations(&bench), "ablations"),
        ),
        (
            "admission",
            cdn_sim::or_die(exp::admission_comparison(&bench), "admission"),
        ),
    ] {
        println!();
        table.print();
        cdn_sim::or_die(table.save_tsv(name), "writing results TSV");
    }
    let (summary, series) = cdn_sim::or_die(exp::fig6(&bench), "fig6");
    println!();
    summary.print();
    cdn_sim::or_die(summary.save_tsv("fig6_summary"), "writing results TSV");
    cdn_sim::or_die(series.save_tsv("fig6_series"), "writing results TSV");
    eprintln!("all tables saved under results/");
}
