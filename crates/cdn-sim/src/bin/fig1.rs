//! Regenerate Figure 1 (ZRO/P-ZRO structure under LRU).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig1(&bench), "fig1");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig1"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
