//! Regenerate Figure 1 (ZRO/P-ZRO structure under LRU).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig1(&bench);
    t.print();
    let p = t.save_tsv("fig1").expect("write results");
    eprintln!("saved {}", p.display());
}
