//! Regenerate Figure 10 (SCIP vs replacement algorithms).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig10(&bench);
    t.print();
    let p = t.save_tsv("fig10").expect("write results");
    eprintln!("saved {}", p.display());
}
