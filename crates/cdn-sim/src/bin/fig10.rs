//! Regenerate Figure 10 (SCIP vs replacement algorithms).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig10(&bench), "fig10");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig10"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
