//! Regenerate Figure 12 (SCIP as an enhancement layer).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig12(&bench), "fig12");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig12"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
