//! Regenerate Figure 12 (SCIP as an enhancement layer).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig12(&bench);
    t.print();
    let p = t.save_tsv("fig12").expect("write results");
    eprintln!("saved {}", p.display());
}
