//! Regenerate Figure 6 (TDC deployment study).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let (summary, series) = cdn_sim::experiments::fig6(&bench);
    summary.print();
    println!();
    series.print();
    summary.save_tsv("fig6_summary").expect("write results");
    let p = series.save_tsv("fig6_series").expect("write results");
    eprintln!("saved {}", p.display());
}
