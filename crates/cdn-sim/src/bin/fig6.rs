//! Regenerate Figure 6 (TDC deployment study).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let (summary, series) = cdn_sim::or_die(cdn_sim::experiments::fig6(&bench), "fig6");
    summary.print();
    println!();
    series.print();
    cdn_sim::or_die(summary.save_tsv("fig6_summary"), "writing results TSV");
    let p = cdn_sim::or_die(series.save_tsv("fig6_series"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
