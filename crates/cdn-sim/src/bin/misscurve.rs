//! Generate miss-ratio curves for the headline policies.
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::miss_curves(&bench), "miss_curves");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("misscurve"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
