//! Generate miss-ratio curves for the headline policies.
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::miss_curves(&bench);
    t.print();
    let p = t.save_tsv("misscurve").expect("write results");
    eprintln!("saved {}", p.display());
}
