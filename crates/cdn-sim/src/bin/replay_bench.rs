//! Replay-engine throughput harness.
//!
//! Replays a CDN-T-profile trace through a fixed policy set and reports,
//! per policy: requests/sec, ns/request, miss ratio and peak
//! policy-metadata bytes — plus the monomorphized-vs-`dyn` dispatch
//! speedup on LRU, the parallel-sweep scaling across all policies, the
//! sharded-replay scaling curve (`shard_scaling`) and the pipelined-batch
//! configuration (`batching`). Results go to stdout and to
//! `BENCH_replay.json` (working directory; run from the repo root) so
//! later PRs have a perf trajectory to defend.
//!
//! Knobs: `REPLAY_BENCH_REQUESTS` (default 2,000,000), `REPRO_SEED`,
//! `REPLAY_BENCH_OUT` (output path), `REPLAY_BENCH_TRACE` (replay a
//! `.bin`/`.csv` trace file instead of generating one — unreadable or
//! corrupt files exit 1 with a structured error), `REPLAY_SHARDS`
//! (comma-separated shard counts for the scaling section, default
//! `1,2,4,8`), `REPLAY_PREFETCH_DIST` (pipelined lookahead: unset/`auto`
//! = footprint-vs-LLC heuristic, `0` = off, `K` = fixed depth),
//! `CDN_SIM_CHECKPOINT` (JSONL sidecar; cached serial measurements are
//! reused on re-runs and the serial-vs-parallel comparison is reported as
//! null).

use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use cdn_cache::{llc_bytes, Request};
use cdn_policies::{replay, replay_dyn};
use cdn_sim::runner::run_policy_dyn;
use cdn_sim::{
    parallel_runs, peak_rss_bytes, run_sharded, run_sharded_serial, BatchMode, Checkpoint,
    PolicyKind, RunMeasurement, TraceCtx, AUTO_PREFETCH_DIST,
};
use cdn_trace::{partition_columns, TraceColumns, TraceGenerator, TraceStats, Workload};

/// The harness's fixed 8-policy sweep set: cheap and expensive, stateless
/// and learned, so scaling is measured over heterogeneous job lengths.
const POLICIES: [PolicyKind; 8] = [
    PolicyKind::Lru,
    PolicyKind::Dip,
    PolicyKind::Ship,
    PolicyKind::AscIp,
    PolicyKind::S4Lru,
    PolicyKind::Gdsf,
    PolicyKind::TinyLfu,
    PolicyKind::Scip,
];

/// Shard counts for the scaling section (`REPLAY_SHARDS`, comma-separated,
/// default `1,2,4,8`). Zero or unparsable entries are dropped.
fn shard_counts_from_env() -> Vec<usize> {
    let raw = std::env::var("REPLAY_SHARDS").unwrap_or_else(|_| "1,2,4,8".to_string());
    let counts: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if counts.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        counts
    }
}

/// One (policy × shard count) point on the scaling curve.
struct ShardPoint {
    policy: &'static str,
    shards: usize,
    aggregate_rps: f64,
    /// `serial wall / threaded wall` — `None` on a single-core machine,
    /// where "speedup" from time-sliced threads is scheduling noise, not
    /// parallelism. Suppressed, never fabricated.
    speedup: Option<f64>,
    /// `speedup / min(shards, cores)` — fraction of the ideal.
    efficiency: Option<f64>,
    ideal: usize,
    imbalance: f64,
    aggregate_miss_ratio: f64,
}

/// Best requests/sec for two alternatives measured back-to-back `reps`
/// times, alternating which side goes first each rep (whichever runs
/// second inherits warm allocator pages from the first, so a fixed order
/// biases the comparison). One untimed warmup of each side first; slow
/// drift (frequency scaling, noisy neighbours) then hits both sides
/// equally and best-of-N absorbs the rest.
fn best_rps_interleaved(
    n: usize,
    reps: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        n as f64 / start.elapsed().as_secs_f64().max(1e-9)
    };
    a();
    b();
    let mut best_a = 0f64;
    let mut best_b = 0f64;
    for rep in 0..reps {
        if rep % 2 == 0 {
            best_a = best_a.max(time(&mut a));
            best_b = best_b.max(time(&mut b));
        } else {
            best_b = best_b.max(time(&mut b));
            best_a = best_a.max(time(&mut a));
        }
    }
    (best_a, best_b)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One policy's numbers from a previously committed `BENCH_replay.json`,
/// recovered by string extraction (the file is machine-written by this
/// binary, so the shape is known; a parse miss just drops the baseline).
#[derive(Debug, Clone)]
struct BaselineEntry {
    policy: String,
    requests_per_sec: f64,
    peak_policy_bytes: f64,
    resident_objects: Option<f64>,
}

/// Extract the numeric field `key` from a one-object-per-line JSON row.
fn row_num(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = row.find(&pat)? + pat.len();
    let rest = &row[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Read the committed benchmark (if any) so this run can report a
/// before/after comparison. Handles both v1 (no resident_objects) and
/// v2 rows.
fn load_baseline(path: &str) -> Vec<BaselineEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| l.trim_start().starts_with("{\"policy\""))
        .filter_map(|row| {
            let at = row.find("\"policy\": \"")? + "\"policy\": \"".len();
            let policy = row[at..].split('"').next()?.to_string();
            Some(BaselineEntry {
                policy,
                requests_per_sec: row_num(row, "requests_per_sec")?,
                peak_policy_bytes: row_num(row, "peak_policy_bytes")?,
                resident_objects: row_num(row, "resident_objects"),
            })
        })
        .collect()
}

/// Bytes of policy metadata per resident object, the density figure the
/// hot/cold SoA layout is meant to shrink.
fn bytes_per_resident(peak_bytes: f64, residents: f64) -> Option<f64> {
    (residents > 0.0).then(|| peak_bytes / residents)
}

/// Load the trace named by `REPLAY_BENCH_TRACE`, exiting with a
/// structured error on unreadable or corrupt files.
fn load_trace_file(path_str: &str) -> Vec<Request> {
    let path = Path::new(path_str);
    let result = match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => cdn_trace::io::read_binary(path),
        Some("csv") => cdn_trace::io::read_csv(path),
        _ => {
            eprintln!("error: REPLAY_BENCH_TRACE must end in .bin or .csv: {path_str}");
            exit(2);
        }
    };
    match result {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("error: failed to read trace {path_str}: {e}");
            exit(1);
        }
    }
}

fn main() {
    let requests: u64 = std::env::var("REPLAY_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let seed = cdn_sim::default_seed();
    let out_path =
        std::env::var("REPLAY_BENCH_OUT").unwrap_or_else(|_| "BENCH_replay.json".to_string());
    // Snapshot the committed numbers before this run overwrites them so
    // the report can show before/after per policy.
    let baseline = load_baseline(&out_path);
    let workload = Workload::CdnT;

    let gen_start = Instant::now();
    let (trace, source) = match std::env::var("REPLAY_BENCH_TRACE") {
        Ok(path) => {
            eprintln!("loading trace {path}...");
            let trace = load_trace_file(&path);
            (trace, path)
        }
        Err(_) => {
            eprintln!("generating {requests} CDN-T requests (seed {seed})...");
            let trace = TraceGenerator::generate(workload.profile().config(requests, seed));
            (trace, workload.name().to_string())
        }
    };
    let requests = trace.len() as u64;
    let stats = TraceStats::compute(&trace);
    let cache_bytes = stats.cache_bytes_for_fraction(workload.paper_cache_fraction(64.0));
    let ctx = TraceCtx::new(&trace, seed);
    // Materialize the SoA columns once; every sweep job shares this Arc.
    let columns = Arc::new(TraceColumns::from_requests(&trace));
    if let Err(e) = columns.validate() {
        eprintln!("error: trace failed validation: {e}");
        exit(1);
    }
    eprintln!(
        "trace ready in {:.1}s ({} objects, cache {:.1} MiB)",
        gen_start.elapsed().as_secs_f64(),
        stats.unique_objects,
        cache_bytes as f64 / (1 << 20) as f64
    );

    // Serial per-policy measurements (monomorphized, SoA trace). With a
    // `CDN_SIM_CHECKPOINT` sidecar armed, cells measured by a previous
    // (possibly crashed) run are reused instead of re-replayed.
    let checkpoint = Checkpoint::from_env();
    let trace_hash = columns.content_hash();
    let mut measurements: Vec<RunMeasurement> = Vec::new();
    let mut serial_secs = 0f64;
    let mut cached = 0usize;
    for kind in POLICIES {
        let fp = kind.fingerprint(cache_bytes, trace_hash, seed);
        if let Some(m) = checkpoint.as_ref().and_then(|cp| cp.get(&fp)) {
            eprintln!("{:>8}: reused from checkpoint", m.policy);
            measurements.push(m);
            cached += 1;
            continue;
        }
        // Best of two back-to-back replays: a single-shot measurement on
        // a shared box can swing tens of percent with neighbour load;
        // the faster attempt is the one closer to the machine's actual
        // capability. Quality metrics are identical across attempts
        // (replay is deterministic), only the clock differs.
        let first = kind.run_monomorphized_columns(cache_bytes, &columns, &ctx);
        let second = kind.run_monomorphized_columns(cache_bytes, &columns, &ctx);
        let m = if second.tps > first.tps {
            second
        } else {
            first
        };
        serial_secs += requests as f64 / m.tps;
        let density = bytes_per_resident(m.peak_memory_bytes as f64, m.resident_objects as f64)
            .map_or("n/a".to_string(), |b| format!("{b:.0} B/obj"));
        eprintln!(
            "{:>8}: {:>6.2} Mreq/s  mr {:.4}  policy-mem {:.1} MiB ({density})",
            m.policy,
            m.tps / 1e6,
            m.miss_ratio,
            m.peak_memory_bytes as f64 / (1 << 20) as f64
        );
        if let Some(cp) = checkpoint.as_ref() {
            cp.record(&fp, &m);
        }
        measurements.push(m);
    }

    // Dispatch overhead: the same LRU replay through the monomorphized
    // fast path vs the `dyn CachePolicy` reference. The kind is laundered
    // through `black_box` so the dyn side cannot be devirtualized — it
    // stands in for sweep code where the policy is runtime data.
    let n = trace.len();
    let opaque_kind = std::hint::black_box(PolicyKind::Lru);
    let (mono_rps, dyn_rps) = best_rps_interleaved(
        n,
        5,
        || {
            let mut p = cdn_policies::replacement::Lru::new(cache_bytes);
            std::hint::black_box(replay(&mut p, &trace));
        },
        || {
            let mut p = opaque_kind.build(cache_bytes, &ctx);
            std::hint::black_box(replay_dyn(p.as_mut(), &trace));
        },
    );
    let speedup = mono_rps / dyn_rps.max(1.0);
    eprintln!(
        "LRU dispatch: mono {:.2} Mreq/s vs dyn {:.2} Mreq/s ({speedup:.2}x)",
        mono_rps / 1e6,
        dyn_rps / 1e6
    );

    // Sweep scaling: all policies in parallel over the shared columns.
    let cores = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);
    let workers = cores.min(POLICIES.len());
    let jobs: Vec<_> = POLICIES
        .iter()
        .map(|&kind| {
            let columns = Arc::clone(&columns);
            let ctx = ctx.clone();
            move || kind.run_monomorphized_columns(cache_bytes, &columns, &ctx)
        })
        .collect();
    let sweep_start = Instant::now();
    let sweep_results = parallel_runs(jobs);
    let sweep_secs = sweep_start.elapsed().as_secs_f64().max(1e-9);
    let sweep_rps = sweep_results.iter().map(|_| n as f64).sum::<f64>() / sweep_secs;
    // With checkpointed cells reused, `serial_secs` covers only the fresh
    // subset and the serial-vs-parallel comparison would be meaningless.
    // On a single-core box the "speedup" is pure scheduling noise (there
    // is no parallelism to claim), so it is suppressed rather than
    // reported as a ~1.0x artifact.
    let sweep_speedup = (cached == 0 && cores > 1).then(|| serial_secs / sweep_secs);
    match sweep_speedup {
        Some(speedup) => eprintln!(
            "sweep: {} jobs on {workers} workers ({cores} cores) in {sweep_secs:.1}s \
             ({speedup:.2}x vs serial {serial_secs:.1}s, {:.1} Mreq/s aggregate)",
            POLICIES.len(),
            sweep_rps / 1e6
        ),
        None if cores == 1 => eprintln!(
            "sweep: {} jobs on {workers} worker (single-core machine, \
             parallel speedup not meaningful) in {sweep_secs:.1}s \
             ({:.1} Mreq/s aggregate)",
            POLICIES.len(),
            sweep_rps / 1e6
        ),
        None => eprintln!(
            "sweep: {} jobs on {workers} workers ({cores} cores) in {sweep_secs:.1}s \
             ({cached} serial cells from checkpoint, no serial baseline; \
             {:.1} Mreq/s aggregate)",
            POLICIES.len(),
            sweep_rps / 1e6
        ),
    }

    // Sharded-replay scaling: partition the trace by key, replay one
    // policy instance per shard on dedicated threads, and compare the
    // threaded wall time against the serial per-partition reference (the
    // decomposition the aggregate is proven exactly equal to in
    // tests/shard_check.rs). LRU is the headline (cheapest per-request
    // work, so it stresses the threading overheads hardest); SCIP rides
    // along as the paper's policy.
    let batch_mode = BatchMode::from_env();
    let shard_counts = shard_counts_from_env();
    let mut shard_points: Vec<ShardPoint> = Vec::new();
    for &n in &shard_counts {
        let sharded = partition_columns(&columns, n);
        for kind in [PolicyKind::Lru, PolicyKind::Scip] {
            let threaded = run_sharded(kind, cache_bytes, &sharded, seed, batch_mode);
            let serial = run_sharded_serial(kind, cache_bytes, &sharded, seed, batch_mode);
            let ideal = n.min(cores);
            let speedup = (cores > 1).then(|| serial.wall_secs / threaded.wall_secs.max(1e-9));
            let point = ShardPoint {
                policy: kind.label(),
                shards: n,
                aggregate_rps: threaded.aggregate_tps(),
                speedup,
                efficiency: speedup.map(|s| s / ideal as f64),
                ideal,
                imbalance: sharded.imbalance(),
                aggregate_miss_ratio: threaded.aggregate.miss_ratio(),
            };
            match point.speedup {
                Some(s) => eprintln!(
                    "shards {n} [{}]: {:>6.2} Mreq/s aggregate, {s:.2}x vs serial \
                     (ideal {}x, efficiency {:.0}%), imbalance {:.2}",
                    point.policy,
                    point.aggregate_rps / 1e6,
                    point.ideal,
                    point.efficiency.unwrap_or(0.0) * 100.0,
                    point.imbalance
                ),
                None => eprintln!(
                    "shards {n} [{}]: {:>6.2} Mreq/s aggregate \
                     (single-core machine, threaded speedup suppressed), imbalance {:.2}",
                    point.policy,
                    point.aggregate_rps / 1e6,
                    point.imbalance
                ),
            }
            shard_points.push(point);
        }
    }
    if cores == 1 {
        eprintln!(
            "shard scaling: 1 core available — per-shard threads are \
             time-sliced, so no parallel speedup is claimed on this machine"
        );
    } else if let Some(&max_shards) = shard_counts.iter().max() {
        if max_shards > cores {
            eprintln!(
                "shard scaling: shard counts above {cores} cores are \
                 time-sliced; their degradation is reported, not hidden"
            );
        }
    }

    // Pipelined-batching configuration actually in effect for the replays
    // above: resolved mode, lookahead depth, and the footprint-vs-LLC
    // numbers the auto heuristic compares.
    let llc = llc_bytes();
    let lru_peak = measurements
        .iter()
        .find(|m| m.policy == "LRU")
        .map_or(0, |m| m.peak_memory_bytes);
    let (mode_name, depth) = match batch_mode {
        BatchMode::Off => ("off", 0),
        BatchMode::Fixed(k) => ("fixed", k),
        BatchMode::Auto => ("auto", AUTO_PREFETCH_DIST),
    };
    eprintln!(
        "batching: mode {mode_name} depth {depth}, LLC {:.1} MiB, \
         LRU index footprint {:.1} MiB ({})",
        llc as f64 / (1 << 20) as f64,
        lru_peak as f64 / (1 << 20) as f64,
        if lru_peak > llc {
            "exceeds LLC: auto mode engages lookahead"
        } else {
            "fits LLC: auto mode stays unbatched"
        }
    );

    // Before/after vs the committed file this run replaces.
    if !baseline.is_empty() {
        eprintln!("before/after vs committed {out_path}:");
        for m in &measurements {
            let Some(b) = baseline.iter().find(|b| b.policy == m.policy) else {
                continue;
            };
            let rps_ratio = m.tps / b.requests_per_sec.max(1.0);
            let density_now =
                bytes_per_resident(m.peak_memory_bytes as f64, m.resident_objects as f64);
            let density_before = b
                .resident_objects
                .and_then(|r| bytes_per_resident(b.peak_policy_bytes, r));
            let density = match (density_before, density_now) {
                (Some(before), Some(now)) => {
                    format!(
                        "{before:.0} -> {now:.0} B/obj ({:+.1}%)",
                        (now / before - 1.0) * 100.0
                    )
                }
                (None, Some(now)) => format!(
                    "{now:.0} B/obj (peak-mem {:+.1}%)",
                    (m.peak_memory_bytes as f64 / b.peak_policy_bytes.max(1.0) - 1.0) * 100.0
                ),
                _ => "density n/a".to_string(),
            };
            eprintln!(
                "{:>8}: {:>6.2} -> {:>6.2} Mreq/s ({rps_ratio:.2}x)  {density}",
                m.policy,
                b.requests_per_sec / 1e6,
                m.tps / 1e6
            );
        }
    }

    // Process-wide peak RSS, read after every threaded section (sweep and
    // shard scaling) has joined so the high-water mark covers them.
    let rss = peak_rss_bytes();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"replay_bench_v4\",\n");
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"workload\": \"{}\",\n", json_escape(&source)));
    json.push_str(&format!("  \"cache_bytes\": {cache_bytes},\n"));
    json.push_str(&format!(
        "  \"peak_rss_bytes\": {},\n",
        rss.map_or("null".to_string(), |b| b.to_string())
    ));
    json.push_str("  \"policies\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let density = bytes_per_resident(m.peak_memory_bytes as f64, m.resident_objects as f64)
            .map_or("null".to_string(), |b| format!("{b:.1}"));
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"requests_per_sec\": {:.1}, \
             \"ns_per_request\": {:.2}, \"miss_ratio\": {:.6}, \
             \"peak_policy_bytes\": {}, \"resident_objects\": {}, \
             \"bytes_per_resident_object\": {}}}{}\n",
            json_escape(&m.policy),
            m.tps,
            m.ns_per_request,
            m.miss_ratio,
            m.peak_memory_bytes,
            m.resident_objects,
            density,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"dispatch\": {{\"policy\": \"LRU\", \"mono_requests_per_sec\": {mono_rps:.1}, \
         \"dyn_requests_per_sec\": {dyn_rps:.1}, \"speedup\": {speedup:.3}}},\n"
    ));
    let (serial_json, speedup_json) = match sweep_speedup {
        Some(speedup) => (format!("{serial_secs:.3}"), format!("{speedup:.3}")),
        None => ("null".to_string(), "null".to_string()),
    };
    json.push_str(&format!(
        "  \"sweep\": {{\"jobs\": {}, \"workers\": {workers}, \
         \"available_parallelism\": {cores}, \
         \"serial_secs\": {serial_json}, \"parallel_secs\": {sweep_secs:.3}, \
         \"speedup\": {speedup_json}, \
         \"aggregate_requests_per_sec\": {sweep_rps:.1}}},\n",
        POLICIES.len()
    ));
    // Shard-scaling rows, one JSON object per line (grep-friendly for the
    // bench.sh gate). Speedup/efficiency are null where no parallelism
    // exists to claim.
    json.push_str("  \"shard_scaling\": {\n");
    json.push_str(&format!("    \"cores\": {cores},\n"));
    // What was *asked for*, independent of what the machine could grant:
    // on a 1-core runner every speedup below is null, and without this
    // field the file would not even record that shard counts were swept.
    let requested: Vec<String> = shard_counts.iter().map(|n| n.to_string()).collect();
    json.push_str(&format!(
        "    \"requested_shards\": [{}],\n",
        requested.join(", ")
    ));
    json.push_str(&format!(
        "    \"batch_mode\": \"{mode_name}\", \"lookahead\": {depth},\n"
    ));
    let scaling_note = if cores == 1 {
        "\"single-core runner: threaded speedup suppressed, not fabricated\""
    } else {
        "null"
    };
    json.push_str(&format!("    \"note\": {scaling_note},\n"));
    json.push_str("    \"points\": [\n");
    for (i, p) in shard_points.iter().enumerate() {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.3}"));
        json.push_str(&format!(
            "      {{\"policy\": \"{}\", \"shards\": {}, \
             \"aggregate_requests_per_sec\": {:.1}, \"speedup_vs_serial\": {}, \
             \"efficiency\": {}, \"ideal_speedup\": {}, \"imbalance\": {:.4}, \
             \"aggregate_miss_ratio\": {:.6}}}{}\n",
            json_escape(p.policy),
            p.shards,
            p.aggregate_rps,
            opt(p.speedup),
            opt(p.efficiency),
            p.ideal,
            p.imbalance,
            p.aggregate_miss_ratio,
            if i + 1 < shard_points.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str(&format!(
        "  \"batching\": {{\"mode\": \"{mode_name}\", \"lookahead\": {depth}, \
         \"llc_bytes\": {llc}, \"lru_peak_policy_bytes\": {lru_peak}, \
         \"auto_engages\": {}}},\n",
        lru_peak > llc
    ));
    json.push_str("  \"baseline_comparison\": ");
    if baseline.is_empty() {
        json.push_str("null\n");
    } else {
        json.push_str("[\n");
        let rows: Vec<String> = measurements
            .iter()
            .filter_map(|m| {
                let b = baseline.iter().find(|b| b.policy == m.policy)?;
                Some(format!(
                    "    {{\"policy\": \"{}\", \"baseline_requests_per_sec\": {:.1}, \
                     \"requests_per_sec\": {:.1}, \"speedup\": {:.3}, \
                     \"baseline_peak_policy_bytes\": {:.0}, \"peak_policy_bytes\": {}}}",
                    json_escape(&m.policy),
                    b.requests_per_sec,
                    m.tps,
                    m.tps / b.requests_per_sec.max(1.0),
                    b.peak_policy_bytes,
                    m.peak_memory_bytes
                ))
            })
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ]\n");
    }
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        exit(1);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");

    // Keep the dyn reference path exercised so regressions in either
    // dispatch mode surface here, not in a downstream PR.
    let check = run_policy_dyn(PolicyKind::Lru, cache_bytes, &trace, &ctx);
    let mono_check = &measurements[0];
    assert_eq!(
        check.miss_ratio, mono_check.miss_ratio,
        "dyn and monomorphized replay disagree"
    );
}
