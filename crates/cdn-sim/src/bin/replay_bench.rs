//! Replay-engine throughput harness.
//!
//! Replays a CDN-T-profile trace through a fixed policy set and reports,
//! per policy: requests/sec, ns/request, miss ratio and peak
//! policy-metadata bytes — plus the monomorphized-vs-`dyn` dispatch
//! speedup on LRU, the parallel-sweep scaling across all policies, the
//! sharded-replay scaling curve (`shard_scaling`) and the pipelined-batch
//! configuration (`batching`). Results go to stdout and to
//! `BENCH_replay.json` (working directory; run from the repo root) so
//! later PRs have a perf trajectory to defend.
//!
//! Knobs: `REPLAY_BENCH_REQUESTS` (default 2,000,000), `REPRO_SEED`,
//! `REPLAY_BENCH_OUT` (output path), `REPLAY_BENCH_TRACE` (replay a
//! `.bin`/`.csv` trace file instead of generating one — unreadable or
//! corrupt files exit 1 with a structured error), `REPLAY_SHARDS`
//! (comma-separated shard counts for the scaling section, default
//! `1,2,4,8`), `REPLAY_PREFETCH_DIST` (pipelined lookahead: unset/`auto`
//! = footprint-vs-LLC heuristic, `0` = off, `K` = fixed depth),
//! `CDN_SIM_CHECKPOINT` (JSONL sidecar; cached serial measurements are
//! reused on re-runs and the serial-vs-parallel comparison is reported as
//! null).
//!
//! **Streaming mode** (`--stream` or `REPLAY_BENCH_STREAM=1`): instead of
//! the in-RAM sections above, prove the out-of-core engine end-to-end and
//! write `BENCH_stream.json` (schema `replay_stream_bench_v1`). Phases,
//! ordered so the monotone `VmHWM` reads stay meaningful: (1) generate a
//! small corpus straight to disk (`REPLAY_STREAM_SMALL`, default 2M) and
//! replay it streamed, recording peak RSS; (2) generate a big corpus
//! (`REPLAY_STREAM_REQUESTS`, default 100M, `0` = skip) with the *small*
//! profile's core-object table (so generator state does not scale with
//! trace length) plus a flash-crowd drift window, replay it streamed, and
//! gate peak RSS at `REPLAY_STREAM_RSS_RATIO` (default 2.0) times the
//! small replay's peak — flat-memory billion-request replay in miniature;
//! (3) load the small corpus in RAM and require u64-identical ledgers
//! plus streamed LRU throughput at `REPLAY_STREAM_MIN_RATIO` (default
//! 0.85) of the in-RAM hot loop (`REPLAY_STREAM_IDENTITY=0` skips).
//! `REPLAY_STREAM_INRAM=1` instead loads the small corpus fully in RAM
//! and replays it there — the other half of `check.sh`'s two-process RSS
//! comparison. Corpora land in `REPLAY_STREAM_DIR` (default a temp dir,
//! removed unless `REPLAY_STREAM_KEEP=1`); the chunk size knob is
//! `REPLAY_STREAM_CHUNK` (records per coalesced chunk).

use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use cdn_cache::{llc_bytes, Request};
use cdn_policies::{replay, replay_dyn};
use cdn_sim::runner::run_policy_dyn;
use cdn_sim::{
    parallel_runs, peak_rss_bytes, run_sharded, run_sharded_serial, BatchMode, Checkpoint,
    PolicyKind, RunMeasurement, TraceCtx, TraceSource, AUTO_PREFETCH_DIST,
};
use cdn_trace::{
    flash_crowd_window, generate_binary, partition_columns, stream_chunk_records, GeneratorConfig,
    TraceColumns, TraceGenerator, TraceStats, Workload,
};

/// The harness's fixed 8-policy sweep set: cheap and expensive, stateless
/// and learned, so scaling is measured over heterogeneous job lengths.
const POLICIES: [PolicyKind; 8] = [
    PolicyKind::Lru,
    PolicyKind::Dip,
    PolicyKind::Ship,
    PolicyKind::AscIp,
    PolicyKind::S4Lru,
    PolicyKind::Gdsf,
    PolicyKind::TinyLfu,
    PolicyKind::Scip,
];

/// Shard counts for the scaling section (`REPLAY_SHARDS`, comma-separated,
/// default `1,2,4,8`). Zero or unparsable entries are dropped.
fn shard_counts_from_env() -> Vec<usize> {
    let raw = std::env::var("REPLAY_SHARDS").unwrap_or_else(|_| "1,2,4,8".to_string());
    let counts: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if counts.is_empty() {
        vec![1, 2, 4, 8]
    } else {
        counts
    }
}

/// One (policy × shard count) point on the scaling curve.
struct ShardPoint {
    policy: &'static str,
    shards: usize,
    aggregate_rps: f64,
    /// `serial wall / threaded wall` — `None` on a single-core machine,
    /// where "speedup" from time-sliced threads is scheduling noise, not
    /// parallelism. Suppressed, never fabricated.
    speedup: Option<f64>,
    /// `speedup / min(shards, cores)` — fraction of the ideal.
    efficiency: Option<f64>,
    ideal: usize,
    imbalance: f64,
    aggregate_miss_ratio: f64,
}

/// Best requests/sec for two alternatives measured back-to-back `reps`
/// times, alternating which side goes first each rep (whichever runs
/// second inherits warm allocator pages from the first, so a fixed order
/// biases the comparison). One untimed warmup of each side first; slow
/// drift (frequency scaling, noisy neighbours) then hits both sides
/// equally and best-of-N absorbs the rest.
fn best_rps_interleaved(
    n: usize,
    reps: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        n as f64 / start.elapsed().as_secs_f64().max(1e-9)
    };
    a();
    b();
    let mut best_a = 0f64;
    let mut best_b = 0f64;
    for rep in 0..reps {
        if rep % 2 == 0 {
            best_a = best_a.max(time(&mut a));
            best_b = best_b.max(time(&mut b));
        } else {
            best_b = best_b.max(time(&mut b));
            best_a = best_a.max(time(&mut a));
        }
    }
    (best_a, best_b)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One policy's numbers from a previously committed `BENCH_replay.json`,
/// recovered by string extraction (the file is machine-written by this
/// binary, so the shape is known; a parse miss just drops the baseline).
#[derive(Debug, Clone)]
struct BaselineEntry {
    policy: String,
    requests_per_sec: f64,
    peak_policy_bytes: f64,
    resident_objects: Option<f64>,
}

/// Extract the numeric field `key` from a one-object-per-line JSON row.
fn row_num(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = row.find(&pat)? + pat.len();
    let rest = &row[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Read the committed benchmark (if any) so this run can report a
/// before/after comparison. Handles both v1 (no resident_objects) and
/// v2 rows.
fn load_baseline(path: &str) -> Vec<BaselineEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| l.trim_start().starts_with("{\"policy\""))
        .filter_map(|row| {
            let at = row.find("\"policy\": \"")? + "\"policy\": \"".len();
            let policy = row[at..].split('"').next()?.to_string();
            Some(BaselineEntry {
                policy,
                requests_per_sec: row_num(row, "requests_per_sec")?,
                peak_policy_bytes: row_num(row, "peak_policy_bytes")?,
                resident_objects: row_num(row, "resident_objects"),
            })
        })
        .collect()
}

/// Bytes of policy metadata per resident object, the density figure the
/// hot/cold SoA layout is meant to shrink.
fn bytes_per_resident(peak_bytes: f64, residents: f64) -> Option<f64> {
    (residents > 0.0).then(|| peak_bytes / residents)
}

/// Load the trace named by `REPLAY_BENCH_TRACE`, exiting with a
/// structured error on unreadable or corrupt files.
fn load_trace_file(path_str: &str) -> Vec<Request> {
    let path = Path::new(path_str);
    let result = match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => cdn_trace::io::read_binary(path),
        Some("csv") => cdn_trace::io::read_csv(path),
        _ => {
            eprintln!("error: REPLAY_BENCH_TRACE must end in .bin or .csv: {path_str}");
            exit(2);
        }
    };
    match result {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("error: failed to read trace {path_str}: {e}");
            exit(1);
        }
    }
}

fn env_u64(key: &str, fallback: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

fn env_f64(key: &str, fallback: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

/// One streamed (or in-RAM, in `REPLAY_STREAM_INRAM` mode) replay row of
/// the streaming-bench report.
struct StreamPoint {
    policy: &'static str,
    requests: u64,
    rps: f64,
    miss_ratio: f64,
    peak_policy_bytes: usize,
}

/// Replay `path` out-of-core through `kind` and convert the measurement
/// into a report row. Any [`cdn_trace::TraceError`] is fatal: a perf
/// number over a partially replayed trace would be fiction.
fn stream_replay_point(path: &Path, kind: PolicyKind, seed: u64) -> (StreamPoint, RunMeasurement) {
    let src = cdn_sim::or_die(TraceSource::open(path), "open streamed trace");
    let requests = src.requests_hint();
    let ctx = TraceCtx::without_oracle(requests, seed);
    let m = cdn_sim::or_die(
        src.replay(kind, stream_cache_bytes(), &ctx, BatchMode::from_env()),
        "streamed replay",
    );
    (
        StreamPoint {
            policy: kind.label(),
            requests,
            rps: m.tps,
            miss_ratio: m.miss_ratio,
            peak_policy_bytes: m.peak_memory_bytes,
        },
        m,
    )
}

/// Cache size for the streaming bench (`REPLAY_STREAM_CACHE_BYTES`,
/// default 2 GB). Deliberately *fixed*, not derived from the trace: the
/// paper's cache fraction needs whole-trace `TraceStats` (which an
/// out-of-core run cannot afford), and a capacity that scaled with trace
/// length would let the resident-set metadata — and therefore peak RSS —
/// grow with the corpus, turning the flat-memory gate into a tautology.
/// Every side of every identity/RSS comparison uses this same budget.
fn stream_cache_bytes() -> u64 {
    env_u64("REPLAY_STREAM_CACHE_BYTES", 2_000_000_000).max(1 << 20)
}

/// The out-of-core proof mode (`--stream`): see the module docs for the
/// phase ordering and gates. Never returns.
fn stream_mode() -> ! {
    let seed = cdn_sim::default_seed();
    let small_requests = env_u64("REPLAY_STREAM_SMALL", 2_000_000).max(1);
    let big_requests = env_u64("REPLAY_STREAM_REQUESTS", 100_000_000);
    let rss_gate = env_f64("REPLAY_STREAM_RSS_RATIO", 2.0);
    let min_ratio = env_f64("REPLAY_STREAM_MIN_RATIO", 0.85);
    let identity = env_u64("REPLAY_STREAM_IDENTITY", 1) != 0;
    let inram = env_u64("REPLAY_STREAM_INRAM", 0) != 0;
    let keep = env_u64("REPLAY_STREAM_KEEP", 0) != 0;
    let out_path =
        std::env::var("REPLAY_STREAM_OUT").unwrap_or_else(|_| "BENCH_stream.json".to_string());
    let dir: PathBuf = std::env::var("REPLAY_STREAM_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("replay-stream-{}", std::process::id()))
        });
    cdn_sim::or_die(std::fs::create_dir_all(&dir), "create corpus dir");
    let workload = Workload::CdnT;
    let small_cfg = workload.profile().config(small_requests, seed);

    // Phase 1: small corpus to disk, then replay it (streamed, or fully
    // in RAM when this process is the `REPLAY_STREAM_INRAM` half of the
    // two-process RSS comparison).
    let small_path = dir.join(format!("stream_small_{small_requests}.bin"));
    eprintln!(
        "generating {small_requests} requests to {}...",
        small_path.display()
    );
    let gen_start = Instant::now();
    let written = cdn_sim::or_die(
        generate_binary(&small_path, small_cfg.clone()),
        "generate small corpus",
    );
    let small_gen_secs = gen_start.elapsed().as_secs_f64();
    let small_bytes = std::fs::metadata(&small_path).map(|m| m.len()).unwrap_or(0);
    assert_eq!(written, small_requests, "generator wrote a different count");

    let mode_name = if inram { "inram" } else { "stream" };
    let mut small_points: Vec<StreamPoint> = Vec::new();
    let mut small_measurements: Vec<RunMeasurement> = Vec::new();
    for kind in [PolicyKind::Lru, PolicyKind::Scip] {
        let (point, m) = if inram {
            let trace = cdn_sim::or_die(cdn_trace::io::read_binary(&small_path), "read corpus");
            let cols = TraceColumns::from_requests(&trace);
            let ctx = TraceCtx::without_oracle(small_requests, seed);
            let m = kind.replay_batched(stream_cache_bytes(), &cols, &ctx, BatchMode::from_env());
            (
                StreamPoint {
                    policy: kind.label(),
                    requests: small_requests,
                    rps: m.tps,
                    miss_ratio: m.miss_ratio,
                    peak_policy_bytes: m.peak_memory_bytes,
                },
                m,
            )
        } else {
            stream_replay_point(&small_path, kind, seed)
        };
        eprintln!(
            "{mode_name} {small_requests} [{}]: {:>6.2} Mreq/s  mr {:.4}",
            point.policy,
            point.rps / 1e6,
            point.miss_ratio
        );
        small_points.push(point);
        small_measurements.push(m);
    }
    // VmHWM is monotone, so this covers generation + the small replays.
    let rss_small = peak_rss_bytes();

    // Phase 2: the big corpus. Its generator reuses the *small* config's
    // core-object table so generator state does not scale with trace
    // length, and overlays a flash-crowd window for drift. Skipped (and
    // reported as skipped, never silently) when REPLAY_STREAM_REQUESTS=0
    // or in the in-RAM comparison half.
    struct BigSection {
        requests: u64,
        gen_secs: f64,
        file_bytes: u64,
        point: StreamPoint,
        rss_ratio: Option<f64>,
    }
    let big = if big_requests > 0 && !inram {
        let big_cfg = GeneratorConfig {
            requests: big_requests,
            core_objects: small_cfg.core_objects,
            events: vec![flash_crowd_window(big_requests)],
            burst_gap_mean: small_cfg.burst_gap_mean,
            drift_interval: small_cfg.drift_interval,
            ..small_cfg.clone()
        };
        let big_path = dir.join(format!("stream_big_{big_requests}.bin"));
        eprintln!(
            "generating {big_requests} requests to {}...",
            big_path.display()
        );
        let gen_start = Instant::now();
        let written = cdn_sim::or_die(generate_binary(&big_path, big_cfg), "generate big corpus");
        let gen_secs = gen_start.elapsed().as_secs_f64();
        assert_eq!(written, big_requests, "generator wrote a different count");
        let file_bytes = std::fs::metadata(&big_path).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "big corpus: {:.2} GiB in {gen_secs:.1}s",
            file_bytes as f64 / (1u64 << 30) as f64
        );
        let (point, _) = stream_replay_point(&big_path, PolicyKind::Lru, seed);
        eprintln!(
            "stream {big_requests} [{}]: {:>6.2} Mreq/s  mr {:.4}",
            point.policy,
            point.rps / 1e6,
            point.miss_ratio
        );
        if !keep {
            std::fs::remove_file(&big_path).ok();
        }
        let rss_big = peak_rss_bytes();
        let rss_ratio = match (rss_small, rss_big) {
            (Some(s), Some(b)) if s > 0 => Some(b as f64 / s as f64),
            _ => None,
        };
        match rss_ratio {
            Some(r) => {
                eprintln!(
                    "peak RSS: small {:.1} MiB -> big {:.1} MiB ({r:.2}x, gate {rss_gate:.1}x)",
                    rss_small.unwrap_or(0) as f64 / (1 << 20) as f64,
                    rss_big.unwrap_or(0) as f64 / (1 << 20) as f64
                );
                if r > rss_gate {
                    eprintln!(
                        "FAIL: streamed replay of {big_requests} requests peaked at {r:.2}x \
                         the {small_requests}-request replay's RSS (gate {rss_gate:.1}x) — \
                         memory is not flat in trace length"
                    );
                    exit(1);
                }
            }
            None => eprintln!(
                "peak RSS gate skipped: /proc/self/status has no VmHWM on this platform \
                 (skipped, not fabricated)"
            ),
        }
        Some(BigSection {
            requests: big_requests,
            gen_secs,
            file_bytes,
            point,
            rss_ratio,
        })
    } else {
        if !inram {
            eprintln!("big streamed replay skipped (REPLAY_STREAM_REQUESTS=0)");
        }
        None
    };

    // Phase 3: identity + throughput vs the in-RAM hot loop, now that
    // every RSS number is already recorded (loading the trace in RAM
    // here cannot retroactively poison the high-water marks above).
    struct IdentitySection {
        exact: bool,
        rps_ratio: f64,
        decode_rps: f64,
        bound_rps: f64,
        ratio_vs_bound: f64,
        cores: usize,
    }
    let identity_section = if identity && !inram {
        let trace = cdn_sim::or_die(cdn_trace::io::read_binary(&small_path), "read small corpus");
        let cols = TraceColumns::from_requests(&trace);
        let ctx = TraceCtx::without_oracle(small_requests, seed);
        let cache_bytes = stream_cache_bytes();
        let mut exact = true;
        let mut in_ram_lru_rps = 0f64;
        for (kind, streamed) in [PolicyKind::Lru, PolicyKind::Scip]
            .into_iter()
            .zip(&small_measurements)
        {
            // Best of two for the clock; ledgers are deterministic.
            let a = kind.replay_batched(cache_bytes, &cols, &ctx, BatchMode::from_env());
            let b = kind.replay_batched(cache_bytes, &cols, &ctx, BatchMode::from_env());
            let m = if b.tps > a.tps { b } else { a };
            if kind == PolicyKind::Lru {
                in_ram_lru_rps = m.tps;
            }
            if (m.hits, m.misses, m.hit_bytes, m.miss_bytes)
                != (
                    streamed.hits,
                    streamed.misses,
                    streamed.hit_bytes,
                    streamed.miss_bytes,
                )
                || m.peak_memory_bytes != streamed.peak_memory_bytes
                || m.resident_objects != streamed.resident_objects
            {
                eprintln!(
                    "FAIL: {} streamed ledgers diverged from in-RAM replay \
                     (hits {} vs {}, misses {} vs {})",
                    kind.label(),
                    streamed.hits,
                    m.hits,
                    streamed.misses,
                    m.misses
                );
                exact = false;
            }
        }
        // Re-time the streamed LRU replay back-to-back with the in-RAM
        // number above (the phase-1 measurement ran against cold page
        // cache; this one isolates the engine overhead).
        let (stream_point, _) = stream_replay_point(&small_path, PolicyKind::Lru, seed);
        let stream_rps = stream_point.rps.max(small_points[0].rps);
        // Decode-only pass: what the prefetch pipeline's producer side
        // costs by itself (read + CRC + columnar decode, through the real
        // prefetch thread).
        let decode_rps = {
            let t = Instant::now();
            let mut n = 0usize;
            for c in cdn_sim::or_die(
                cdn_trace::StreamingTrace::open(&small_path),
                "open decode-only stream",
            ) {
                n += cdn_sim::or_die(c, "decode-only chunk").len();
            }
            n as f64 / t.elapsed().as_secs_f64().max(1e-9)
        };
        // The achievable pipeline bound for this host: with a spare core
        // the producer overlaps the replay loop entirely, so streaming can
        // at best match the slower of the two; on a single-core host
        // producer and consumer timeshare, so their costs add. Gating the
        // streamed rate against this bound measures the engine's overhead
        // (channel hops, chunk boundaries, cache interference) rather than
        // the host's core count.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let bound_rps = if cores >= 2 {
            in_ram_lru_rps.min(decode_rps)
        } else {
            (in_ram_lru_rps * decode_rps) / (in_ram_lru_rps + decode_rps).max(1.0)
        };
        let rps_ratio = stream_rps / in_ram_lru_rps.max(1.0);
        let ratio_vs_bound = stream_rps / bound_rps.max(1.0);
        eprintln!(
            "LRU streamed {:.2} Mreq/s vs in-RAM {:.2} Mreq/s ({:.0}%); decode-only \
             {:.2} Mreq/s -> pipeline bound {:.2} Mreq/s on {cores} core(s): {:.0}% of \
             bound (gate {:.0}%)",
            stream_rps / 1e6,
            in_ram_lru_rps / 1e6,
            rps_ratio * 100.0,
            decode_rps / 1e6,
            bound_rps / 1e6,
            ratio_vs_bound * 100.0,
            min_ratio * 100.0
        );
        if !exact {
            exit(1);
        }
        if ratio_vs_bound < min_ratio {
            eprintln!(
                "FAIL: streamed LRU throughput is {:.0}% of the achievable pipeline \
                 bound (gate {:.0}%)",
                ratio_vs_bound * 100.0,
                min_ratio * 100.0
            );
            exit(1);
        }
        Some(IdentitySection {
            exact,
            rps_ratio,
            decode_rps,
            bound_rps,
            ratio_vs_bound,
            cores,
        })
    } else {
        if !inram {
            eprintln!("identity check skipped (REPLAY_STREAM_IDENTITY=0)");
        }
        None
    };

    // Report. One JSON object per `points` line, grep-friendly for
    // `scripts/bench.sh --stream`. Written before corpus cleanup so an
    // `REPLAY_STREAM_OUT` inside `REPLAY_STREAM_DIR` still lands
    // (VmHWM is monotone, so sampling peak RSS here loses nothing).
    let final_rss = peak_rss_bytes();
    let opt_u64 = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"replay_stream_bench_v1\",\n");
    json.push_str(&format!("  \"mode\": \"{mode_name}\",\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!(
        "  \"chunk_records\": {},\n",
        stream_chunk_records()
    ));
    json.push_str(&format!("  \"peak_rss_bytes\": {},\n", opt_u64(final_rss)));
    json.push_str("  \"small\": {\n");
    json.push_str(&format!(
        "    \"requests\": {small_requests},\n    \"gen_secs\": {small_gen_secs:.3},\n    \
         \"file_bytes\": {small_bytes},\n    \"peak_rss_after_bytes\": {},\n",
        opt_u64(rss_small)
    ));
    json.push_str("    \"points\": [\n");
    for (i, p) in small_points.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"policy\": \"{}\", \"requests\": {}, \"requests_per_sec\": {:.1}, \
             \"miss_ratio\": {:.6}, \"peak_policy_bytes\": {}}}{}\n",
            json_escape(p.policy),
            p.requests,
            p.rps,
            p.miss_ratio,
            p.peak_policy_bytes,
            if i + 1 < small_points.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    match &big {
        Some(b) => {
            json.push_str("  \"big\": {\n");
            json.push_str(&format!(
                "    \"requests\": {},\n    \"gen_secs\": {:.3},\n    \"file_bytes\": {},\n",
                b.requests, b.gen_secs, b.file_bytes
            ));
            json.push_str(&format!(
                "    \"rss_ratio_vs_small\": {},\n    \"rss_gate_max_ratio\": {rss_gate},\n",
                b.rss_ratio
                    .map_or("null".to_string(), |r| format!("{r:.4}"))
            ));
            json.push_str("    \"points\": [\n");
            json.push_str(&format!(
                "      {{\"policy\": \"{}\", \"requests\": {}, \"requests_per_sec\": {:.1}, \
                 \"miss_ratio\": {:.6}, \"peak_policy_bytes\": {}}}\n",
                json_escape(b.point.policy),
                b.point.requests,
                b.point.rps,
                b.point.miss_ratio,
                b.point.peak_policy_bytes
            ));
            json.push_str("    ]\n  },\n");
        }
        None => {
            let note = if inram {
                "\"in-RAM comparison half: big corpus not applicable\""
            } else {
                "\"skipped via REPLAY_STREAM_REQUESTS=0\""
            };
            json.push_str(&format!("  \"big\": null,\n  \"big_note\": {note},\n"));
        }
    }
    match &identity_section {
        Some(s) => json.push_str(&format!(
            "  \"identity\": {{\"exact\": {}, \"stream_vs_inram_rps_ratio\": {:.4}, \
             \"decode_only_rps\": {:.1}, \"pipeline_bound_rps\": {:.1}, \
             \"stream_vs_bound_rps_ratio\": {:.4}, \"cores\": {}, \
             \"min_ratio\": {min_ratio}}}\n",
            s.exact, s.rps_ratio, s.decode_rps, s.bound_rps, s.ratio_vs_bound, s.cores
        )),
        None => json.push_str("  \"identity\": null\n"),
    }
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        exit(1);
    }
    if !keep {
        std::fs::remove_file(&small_path).ok();
        std::fs::remove_dir(&dir).ok();
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
    exit(0)
}

fn main() {
    if std::env::args().any(|a| a == "--stream")
        || std::env::var("REPLAY_BENCH_STREAM").is_ok_and(|v| v == "1")
    {
        stream_mode();
    }
    let requests: u64 = std::env::var("REPLAY_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let seed = cdn_sim::default_seed();
    let out_path =
        std::env::var("REPLAY_BENCH_OUT").unwrap_or_else(|_| "BENCH_replay.json".to_string());
    // Snapshot the committed numbers before this run overwrites them so
    // the report can show before/after per policy.
    let baseline = load_baseline(&out_path);
    let workload = Workload::CdnT;

    let gen_start = Instant::now();
    let (trace, source) = match std::env::var("REPLAY_BENCH_TRACE") {
        Ok(path) => {
            eprintln!("loading trace {path}...");
            let trace = load_trace_file(&path);
            (trace, path)
        }
        Err(_) => {
            eprintln!("generating {requests} CDN-T requests (seed {seed})...");
            let trace = TraceGenerator::generate(workload.profile().config(requests, seed));
            (trace, workload.name().to_string())
        }
    };
    let requests = trace.len() as u64;
    let stats = TraceStats::compute(&trace);
    let cache_bytes = stats.cache_bytes_for_fraction(workload.paper_cache_fraction(64.0));
    let ctx = TraceCtx::new(&trace, seed);
    // Materialize the SoA columns once; every sweep job shares this Arc.
    let columns = Arc::new(TraceColumns::from_requests(&trace));
    if let Err(e) = columns.validate() {
        eprintln!("error: trace failed validation: {e}");
        exit(1);
    }
    eprintln!(
        "trace ready in {:.1}s ({} objects, cache {:.1} MiB)",
        gen_start.elapsed().as_secs_f64(),
        stats.unique_objects,
        cache_bytes as f64 / (1 << 20) as f64
    );

    // Serial per-policy measurements (monomorphized, SoA trace). With a
    // `CDN_SIM_CHECKPOINT` sidecar armed, cells measured by a previous
    // (possibly crashed) run are reused instead of re-replayed.
    let checkpoint = Checkpoint::from_env();
    let trace_hash = columns.content_hash();
    let mut measurements: Vec<RunMeasurement> = Vec::new();
    let mut serial_secs = 0f64;
    let mut cached = 0usize;
    for kind in POLICIES {
        let fp = kind.fingerprint(cache_bytes, trace_hash, seed);
        if let Some(m) = checkpoint.as_ref().and_then(|cp| cp.get(&fp)) {
            eprintln!("{:>8}: reused from checkpoint", m.policy);
            measurements.push(m);
            cached += 1;
            continue;
        }
        // Best of two back-to-back replays: a single-shot measurement on
        // a shared box can swing tens of percent with neighbour load;
        // the faster attempt is the one closer to the machine's actual
        // capability. Quality metrics are identical across attempts
        // (replay is deterministic), only the clock differs.
        let first = kind.run_monomorphized_columns(cache_bytes, &columns, &ctx);
        let second = kind.run_monomorphized_columns(cache_bytes, &columns, &ctx);
        let m = if second.tps > first.tps {
            second
        } else {
            first
        };
        serial_secs += requests as f64 / m.tps;
        let density = bytes_per_resident(m.peak_memory_bytes as f64, m.resident_objects as f64)
            .map_or("n/a".to_string(), |b| format!("{b:.0} B/obj"));
        eprintln!(
            "{:>8}: {:>6.2} Mreq/s  mr {:.4}  policy-mem {:.1} MiB ({density})",
            m.policy,
            m.tps / 1e6,
            m.miss_ratio,
            m.peak_memory_bytes as f64 / (1 << 20) as f64
        );
        if let Some(cp) = checkpoint.as_ref() {
            cp.record(&fp, &m);
        }
        measurements.push(m);
    }

    // Dispatch overhead: the same LRU replay through the monomorphized
    // fast path vs the `dyn CachePolicy` reference. The kind is laundered
    // through `black_box` so the dyn side cannot be devirtualized — it
    // stands in for sweep code where the policy is runtime data.
    let n = trace.len();
    let opaque_kind = std::hint::black_box(PolicyKind::Lru);
    let (mono_rps, dyn_rps) = best_rps_interleaved(
        n,
        5,
        || {
            let mut p = cdn_policies::replacement::Lru::new(cache_bytes);
            std::hint::black_box(replay(&mut p, &trace));
        },
        || {
            let mut p = opaque_kind.build(cache_bytes, &ctx);
            std::hint::black_box(replay_dyn(p.as_mut(), &trace));
        },
    );
    let speedup = mono_rps / dyn_rps.max(1.0);
    eprintln!(
        "LRU dispatch: mono {:.2} Mreq/s vs dyn {:.2} Mreq/s ({speedup:.2}x)",
        mono_rps / 1e6,
        dyn_rps / 1e6
    );

    // Sweep scaling: all policies in parallel over the shared columns.
    let cores = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);
    let workers = cores.min(POLICIES.len());
    let jobs: Vec<_> = POLICIES
        .iter()
        .map(|&kind| {
            let columns = Arc::clone(&columns);
            let ctx = ctx.clone();
            move || kind.run_monomorphized_columns(cache_bytes, &columns, &ctx)
        })
        .collect();
    let sweep_start = Instant::now();
    let sweep_results = parallel_runs(jobs);
    let sweep_secs = sweep_start.elapsed().as_secs_f64().max(1e-9);
    let sweep_rps = sweep_results.iter().map(|_| n as f64).sum::<f64>() / sweep_secs;
    // With checkpointed cells reused, `serial_secs` covers only the fresh
    // subset and the serial-vs-parallel comparison would be meaningless.
    // On a single-core box the "speedup" is pure scheduling noise (there
    // is no parallelism to claim), so it is suppressed rather than
    // reported as a ~1.0x artifact.
    let sweep_speedup = (cached == 0 && cores > 1).then(|| serial_secs / sweep_secs);
    match sweep_speedup {
        Some(speedup) => eprintln!(
            "sweep: {} jobs on {workers} workers ({cores} cores) in {sweep_secs:.1}s \
             ({speedup:.2}x vs serial {serial_secs:.1}s, {:.1} Mreq/s aggregate)",
            POLICIES.len(),
            sweep_rps / 1e6
        ),
        None if cores == 1 => eprintln!(
            "sweep: {} jobs on {workers} worker (single-core machine, \
             parallel speedup not meaningful) in {sweep_secs:.1}s \
             ({:.1} Mreq/s aggregate)",
            POLICIES.len(),
            sweep_rps / 1e6
        ),
        None => eprintln!(
            "sweep: {} jobs on {workers} workers ({cores} cores) in {sweep_secs:.1}s \
             ({cached} serial cells from checkpoint, no serial baseline; \
             {:.1} Mreq/s aggregate)",
            POLICIES.len(),
            sweep_rps / 1e6
        ),
    }

    // Sharded-replay scaling: partition the trace by key, replay one
    // policy instance per shard on dedicated threads, and compare the
    // threaded wall time against the serial per-partition reference (the
    // decomposition the aggregate is proven exactly equal to in
    // tests/shard_check.rs). LRU is the headline (cheapest per-request
    // work, so it stresses the threading overheads hardest); SCIP rides
    // along as the paper's policy.
    let batch_mode = BatchMode::from_env();
    let shard_counts = shard_counts_from_env();
    let mut shard_points: Vec<ShardPoint> = Vec::new();
    for &n in &shard_counts {
        let sharded = partition_columns(&columns, n);
        for kind in [PolicyKind::Lru, PolicyKind::Scip] {
            let threaded = run_sharded(kind, cache_bytes, &sharded, seed, batch_mode);
            let serial = run_sharded_serial(kind, cache_bytes, &sharded, seed, batch_mode);
            let ideal = n.min(cores);
            let speedup = (cores > 1).then(|| serial.wall_secs / threaded.wall_secs.max(1e-9));
            let point = ShardPoint {
                policy: kind.label(),
                shards: n,
                aggregate_rps: threaded.aggregate_tps(),
                speedup,
                efficiency: speedup.map(|s| s / ideal as f64),
                ideal,
                imbalance: sharded.imbalance(),
                aggregate_miss_ratio: threaded.aggregate.miss_ratio(),
            };
            match point.speedup {
                Some(s) => eprintln!(
                    "shards {n} [{}]: {:>6.2} Mreq/s aggregate, {s:.2}x vs serial \
                     (ideal {}x, efficiency {:.0}%), imbalance {:.2}",
                    point.policy,
                    point.aggregate_rps / 1e6,
                    point.ideal,
                    point.efficiency.unwrap_or(0.0) * 100.0,
                    point.imbalance
                ),
                None => eprintln!(
                    "shards {n} [{}]: {:>6.2} Mreq/s aggregate \
                     (single-core machine, threaded speedup suppressed), imbalance {:.2}",
                    point.policy,
                    point.aggregate_rps / 1e6,
                    point.imbalance
                ),
            }
            shard_points.push(point);
        }
    }
    if cores == 1 {
        eprintln!(
            "shard scaling: 1 core available — per-shard threads are \
             time-sliced, so no parallel speedup is claimed on this machine"
        );
    } else if let Some(&max_shards) = shard_counts.iter().max() {
        if max_shards > cores {
            eprintln!(
                "shard scaling: shard counts above {cores} cores are \
                 time-sliced; their degradation is reported, not hidden"
            );
        }
    }

    // Pipelined-batching configuration actually in effect for the replays
    // above: resolved mode, lookahead depth, and the footprint-vs-LLC
    // numbers the auto heuristic compares.
    let llc = llc_bytes();
    let lru_peak = measurements
        .iter()
        .find(|m| m.policy == "LRU")
        .map_or(0, |m| m.peak_memory_bytes);
    let (mode_name, depth) = match batch_mode {
        BatchMode::Off => ("off", 0),
        BatchMode::Fixed(k) => ("fixed", k),
        BatchMode::Auto => ("auto", AUTO_PREFETCH_DIST),
    };
    eprintln!(
        "batching: mode {mode_name} depth {depth}, LLC {:.1} MiB, \
         LRU index footprint {:.1} MiB ({})",
        llc as f64 / (1 << 20) as f64,
        lru_peak as f64 / (1 << 20) as f64,
        if lru_peak > llc {
            "exceeds LLC: auto mode engages lookahead"
        } else {
            "fits LLC: auto mode stays unbatched"
        }
    );

    // Before/after vs the committed file this run replaces.
    if !baseline.is_empty() {
        eprintln!("before/after vs committed {out_path}:");
        for m in &measurements {
            let Some(b) = baseline.iter().find(|b| b.policy == m.policy) else {
                continue;
            };
            let rps_ratio = m.tps / b.requests_per_sec.max(1.0);
            let density_now =
                bytes_per_resident(m.peak_memory_bytes as f64, m.resident_objects as f64);
            let density_before = b
                .resident_objects
                .and_then(|r| bytes_per_resident(b.peak_policy_bytes, r));
            let density = match (density_before, density_now) {
                (Some(before), Some(now)) => {
                    format!(
                        "{before:.0} -> {now:.0} B/obj ({:+.1}%)",
                        (now / before - 1.0) * 100.0
                    )
                }
                (None, Some(now)) => format!(
                    "{now:.0} B/obj (peak-mem {:+.1}%)",
                    (m.peak_memory_bytes as f64 / b.peak_policy_bytes.max(1.0) - 1.0) * 100.0
                ),
                _ => "density n/a".to_string(),
            };
            eprintln!(
                "{:>8}: {:>6.2} -> {:>6.2} Mreq/s ({rps_ratio:.2}x)  {density}",
                m.policy,
                b.requests_per_sec / 1e6,
                m.tps / 1e6
            );
        }
    }

    // Process-wide peak RSS, read after every threaded section (sweep and
    // shard scaling) has joined so the high-water mark covers them.
    let rss = peak_rss_bytes();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"replay_bench_v4\",\n");
    json.push_str(&format!("  \"requests\": {requests},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"workload\": \"{}\",\n", json_escape(&source)));
    json.push_str(&format!("  \"cache_bytes\": {cache_bytes},\n"));
    json.push_str(&format!(
        "  \"peak_rss_bytes\": {},\n",
        rss.map_or("null".to_string(), |b| b.to_string())
    ));
    json.push_str("  \"policies\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let density = bytes_per_resident(m.peak_memory_bytes as f64, m.resident_objects as f64)
            .map_or("null".to_string(), |b| format!("{b:.1}"));
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"requests_per_sec\": {:.1}, \
             \"ns_per_request\": {:.2}, \"miss_ratio\": {:.6}, \
             \"peak_policy_bytes\": {}, \"resident_objects\": {}, \
             \"bytes_per_resident_object\": {}}}{}\n",
            json_escape(&m.policy),
            m.tps,
            m.ns_per_request,
            m.miss_ratio,
            m.peak_memory_bytes,
            m.resident_objects,
            density,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"dispatch\": {{\"policy\": \"LRU\", \"mono_requests_per_sec\": {mono_rps:.1}, \
         \"dyn_requests_per_sec\": {dyn_rps:.1}, \"speedup\": {speedup:.3}}},\n"
    ));
    let (serial_json, speedup_json) = match sweep_speedup {
        Some(speedup) => (format!("{serial_secs:.3}"), format!("{speedup:.3}")),
        None => ("null".to_string(), "null".to_string()),
    };
    json.push_str(&format!(
        "  \"sweep\": {{\"jobs\": {}, \"workers\": {workers}, \
         \"available_parallelism\": {cores}, \
         \"serial_secs\": {serial_json}, \"parallel_secs\": {sweep_secs:.3}, \
         \"speedup\": {speedup_json}, \
         \"aggregate_requests_per_sec\": {sweep_rps:.1}}},\n",
        POLICIES.len()
    ));
    // Shard-scaling rows, one JSON object per line (grep-friendly for the
    // bench.sh gate). Speedup/efficiency are null where no parallelism
    // exists to claim.
    json.push_str("  \"shard_scaling\": {\n");
    json.push_str(&format!("    \"cores\": {cores},\n"));
    // What was *asked for*, independent of what the machine could grant:
    // on a 1-core runner every speedup below is null, and without this
    // field the file would not even record that shard counts were swept.
    let requested: Vec<String> = shard_counts.iter().map(|n| n.to_string()).collect();
    json.push_str(&format!(
        "    \"requested_shards\": [{}],\n",
        requested.join(", ")
    ));
    json.push_str(&format!(
        "    \"batch_mode\": \"{mode_name}\", \"lookahead\": {depth},\n"
    ));
    let scaling_note = if cores == 1 {
        "\"single-core runner: threaded speedup suppressed, not fabricated\""
    } else {
        "null"
    };
    json.push_str(&format!("    \"note\": {scaling_note},\n"));
    json.push_str("    \"points\": [\n");
    for (i, p) in shard_points.iter().enumerate() {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.3}"));
        json.push_str(&format!(
            "      {{\"policy\": \"{}\", \"shards\": {}, \
             \"aggregate_requests_per_sec\": {:.1}, \"speedup_vs_serial\": {}, \
             \"efficiency\": {}, \"ideal_speedup\": {}, \"imbalance\": {:.4}, \
             \"aggregate_miss_ratio\": {:.6}}}{}\n",
            json_escape(p.policy),
            p.shards,
            p.aggregate_rps,
            opt(p.speedup),
            opt(p.efficiency),
            p.ideal,
            p.imbalance,
            p.aggregate_miss_ratio,
            if i + 1 < shard_points.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str(&format!(
        "  \"batching\": {{\"mode\": \"{mode_name}\", \"lookahead\": {depth}, \
         \"llc_bytes\": {llc}, \"lru_peak_policy_bytes\": {lru_peak}, \
         \"auto_engages\": {}}},\n",
        lru_peak > llc
    ));
    json.push_str("  \"baseline_comparison\": ");
    if baseline.is_empty() {
        json.push_str("null\n");
    } else {
        json.push_str("[\n");
        let rows: Vec<String> = measurements
            .iter()
            .filter_map(|m| {
                let b = baseline.iter().find(|b| b.policy == m.policy)?;
                Some(format!(
                    "    {{\"policy\": \"{}\", \"baseline_requests_per_sec\": {:.1}, \
                     \"requests_per_sec\": {:.1}, \"speedup\": {:.3}, \
                     \"baseline_peak_policy_bytes\": {:.0}, \"peak_policy_bytes\": {}}}",
                    json_escape(&m.policy),
                    b.requests_per_sec,
                    m.tps,
                    m.tps / b.requests_per_sec.max(1.0),
                    b.peak_policy_bytes,
                    m.peak_memory_bytes
                ))
            })
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  ]\n");
    }
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        exit(1);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");

    // Keep the dyn reference path exercised so regressions in either
    // dispatch mode surface here, not in a downstream PR.
    let check = run_policy_dyn(PolicyKind::Lru, cache_bytes, &trace, &ctx);
    let mono_check = &measurements[0];
    assert_eq!(
        check.miss_ratio, mono_check.miss_ratio,
        "dyn and monomorphized replay disagree"
    );
}
