//! Regenerate Figure 7 (SCIP vs SCI).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::experiments::fig7(&bench);
    t.print();
    let p = t.save_tsv("fig7").expect("write results");
    eprintln!("saved {}", p.display());
}
