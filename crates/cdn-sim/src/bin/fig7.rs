//! Regenerate Figure 7 (SCIP vs SCI).
fn main() {
    let bench = cdn_sim::experiments::Bench::default_scale();
    let t = cdn_sim::or_die(cdn_sim::experiments::fig7(&bench), "fig7");
    t.print();
    let p = cdn_sim::or_die(t.save_tsv("fig7"), "writing results TSV");
    eprintln!("saved {}", p.display());
}
