//! Trace-driven cache simulator and the per-figure experiment harness.
//!
//! - [`runner`]: a policy registry ([`runner::PolicyKind`]) that can build
//!   every algorithm in the workspace against a trace context, plus the
//!   instrumented replay that measures miss ratio, TPS, per-request CPU
//!   time and peak metadata memory — the quantities behind Figures 8-12.
//!   Replays dispatch once per run and monomorphize
//!   ([`runner::PolicyKind::run_monomorphized`]); the `dyn` path stays
//!   available as [`runner::run_policy_dyn`].
//! - [`sweep`]: lock-free parallel execution of
//!   {workload × policy × cache size} grids (atomic work distributor,
//!   per-job disjoint result slots), with per-job panic isolation and
//!   bounded retry ([`sweep::run_jobs`]) alongside the strict
//!   abort-on-panic path ([`sweep::parallel_runs`]).
//! - [`checkpoint`]: JSONL sidecar checkpoint/resume for sweeps, keyed
//!   by stable job fingerprints (policy + cache size + trace content
//!   hash + seed); set `CDN_SIM_CHECKPOINT` to enable for experiments.
//! - [`stream`]: the out-of-core seam — [`stream::TraceSource`] replays
//!   either in-RAM columns or a disk-backed chunk stream through the
//!   same monomorphized hot loop (ledgers u64-identical), and
//!   [`stream::sweep_streamed`] runs checkpointable policy sweeps whose
//!   peak RSS is independent of trace length.
//! - `fault` (feature `fault-injection`): deterministic failpoints that
//!   make sweep jobs panic and trace reads fail on demand, so tests can
//!   prove the recovery paths.
//! - [`table`]: figure-style table formatting + TSV dumps under
//!   `results/`.
//! - [`experiments`]: one function per paper table/figure; the `fig*` and
//!   `table1` binaries are thin wrappers around these.
//!
//! Scale is controlled by the `REPRO_REQUESTS` environment variable
//! (default 500 000 requests per trace) so the full suite runs on a laptop
//! in minutes while keeping every ratio of the paper's setup.

pub mod checkpoint;
pub mod experiments;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod runner;
pub mod shard;
pub mod stream;
pub mod sweep;
pub mod table;

pub use checkpoint::{job_fingerprint, run_checkpointed, Checkpoint};
pub use experiments::ExperimentError;
pub use runner::{
    run_policy, run_policy_dyn, BatchMode, PolicyKind, RunMeasurement, TraceCtx, AUTO_PREFETCH_DIST,
};
pub use shard::{
    run_routed_serial, run_sharded, run_sharded_serial, run_sharded_stream,
    run_sharded_stream_serial, AggregateMeasurement, OutageWindow, RoutedRunReport,
    RoutedShardLedger, ShardedRunReport, SHARD_QUEUE_SLOTS,
};
pub use stream::{sweep_streamed, TraceSource};
pub use sweep::{parallel_runs, run_jobs, JobOutcome, SweepConfig, SweepReport};
pub use table::{Table, TableError};

/// Peak resident set size of this *process* in bytes, if the platform
/// exposes it.
///
/// Reads `VmHWM` from `/proc/self/status` — the kernel's process-wide
/// high-water mark, which includes every thread's stack and all
/// shard-replay allocations (RSS is a property of the address space, not
/// of any one thread). Taking the max with the current `VmRSS` guards
/// against the brief window where a just-grown mapping is visible in
/// `VmRSS` before the HWM line is refreshed. Call this at the *end* of a
/// run, after multi-threaded sections have joined, so the reported peak
/// covers them.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let field = |key: &str| -> Option<u64> {
        let line = status.lines().find(|l| l.starts_with(key))?;
        let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kb * 1024)
    };
    let hwm = field("VmHWM:");
    let rss = field("VmRSS:");
    match (hwm, rss) {
        (Some(h), Some(r)) => Some(h.max(r)),
        (h, r) => h.or(r),
    }
}

/// Unwrap a fallible step in a binary, exiting nonzero with context.
///
/// The library crates return structured errors instead of panicking; the
/// `fig*` binaries funnel those through here so a failure prints
/// `error: <what>: <cause>` on stderr and exits with status 1.
pub fn or_die<T, E: std::fmt::Display>(res: Result<T, E>, what: &str) -> T {
    match res {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {what}: {e}");
            std::process::exit(1);
        }
    }
}

/// Requests per synthetic trace (override with `REPRO_REQUESTS`).
pub fn default_requests() -> u64 {
    std::env::var("REPRO_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500_000)
}

/// Master seed for experiments (override with `REPRO_SEED`).
pub fn default_seed() -> u64 {
    std::env::var("REPRO_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}
