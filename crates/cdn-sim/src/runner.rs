//! Policy registry and instrumented replay.

use std::sync::Arc;
use std::time::Instant;

use cdn_cache::{CachePolicy, Request};
use cdn_policies::admission::{AdaptSize, TinyLfu, TwoQ};
use cdn_policies::insertion::{
    deciders::{Bip, Lip},
    AscIp, Daaip, Dgippr, Dip, Dta, InsertionCache, Pipp, Ship,
};
use cdn_policies::replacement::{
    Arc as ArcPolicy, BeladyPolicy, Cacheus, Gdsf, GlCache, LeCar, Lhd, Lrb, LrbConfig, Lru,
    LruK, S4Lru, SsLru,
};
use cdn_trace::next_access_table;
use scip::{Sci, Scip, ScipConfig};

/// Per-trace context a policy build may need (Belady's oracle table,
/// scale-dependent LRB windows).
#[derive(Debug, Clone)]
pub struct TraceCtx {
    /// Precomputed next-access table of the trace being replayed.
    pub next_access: Arc<Vec<u64>>,
    /// Trace length in requests.
    pub requests: u64,
    /// Seed for stochastic policies.
    pub seed: u64,
}

impl TraceCtx {
    /// Build a context for a trace.
    pub fn new(trace: &[Request], seed: u64) -> Self {
        TraceCtx {
            next_access: Arc::new(next_access_table(trace)),
            requests: trace.len() as u64,
            seed,
        }
    }

    fn lrb_config(&self) -> LrbConfig {
        LrbConfig {
            memory_window: (self.requests / 8).max(20_000),
            train_interval: (self.requests / 40).max(5_000),
            ..LrbConfig::default()
        }
    }
}

/// Every buildable algorithm in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PolicyKind {
    // Insertion/promotion policies (LRU victim selection).
    Lru,
    Lip,
    Bip,
    Dip,
    Pipp,
    Dta,
    Ship,
    Dgippr,
    Daaip,
    AscIp,
    Sci,
    Scip,
    // Replacement algorithms.
    LruK,
    S4Lru,
    SsLru,
    Gdsf,
    Lhd,
    Arc,
    LeCar,
    Cacheus,
    Lrb,
    GlCache,
    // Admission family (§7 related work, beyond the paper's figures).
    TwoQ,
    TinyLfu,
    AdaptSize,
    // Oracle.
    Belady,
    // §4 enhancements (Figure 12).
    LruKScip,
    LruKAscIp,
    LrbScip,
    LrbAscIp,
}

impl PolicyKind {
    /// The paper's eight insertion-policy baselines (Figure 8/9 order).
    pub const INSERTION_BASELINES: [PolicyKind; 8] = [
        PolicyKind::Lip,
        PolicyKind::Dip,
        PolicyKind::Pipp,
        PolicyKind::Dta,
        PolicyKind::Ship,
        PolicyKind::Dgippr,
        PolicyKind::Daaip,
        PolicyKind::AscIp,
    ];

    /// The paper's eight replacement-algorithm baselines (Figure 10/11;
    /// LRU-K, S4LRU, SS-LRU, GDSF, LHD, CACHEUS, LRB, GL-Cache).
    pub const REPLACEMENT_BASELINES: [PolicyKind; 8] = [
        PolicyKind::LruK,
        PolicyKind::S4Lru,
        PolicyKind::SsLru,
        PolicyKind::Gdsf,
        PolicyKind::Lhd,
        PolicyKind::Cacheus,
        PolicyKind::Lrb,
        PolicyKind::GlCache,
    ];

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Lip => "LIP",
            PolicyKind::Bip => "BIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Pipp => "PIPP",
            PolicyKind::Dta => "DTA",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Dgippr => "DGIPPR",
            PolicyKind::Daaip => "DAAIP",
            PolicyKind::AscIp => "ASC-IP",
            PolicyKind::Sci => "SCI",
            PolicyKind::Scip => "SCIP",
            PolicyKind::LruK => "LRU-K",
            PolicyKind::S4Lru => "S4LRU",
            PolicyKind::SsLru => "SS-LRU",
            PolicyKind::Gdsf => "GDSF",
            PolicyKind::Lhd => "LHD",
            PolicyKind::Arc => "ARC",
            PolicyKind::LeCar => "LeCaR",
            PolicyKind::Cacheus => "CACHEUS",
            PolicyKind::Lrb => "LRB",
            PolicyKind::GlCache => "GL-Cache",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::TinyLfu => "TinyLFU",
            PolicyKind::AdaptSize => "AdaptSize",
            PolicyKind::Belady => "Belady",
            PolicyKind::LruKScip => "LRU-K-SCIP",
            PolicyKind::LruKAscIp => "LRU-K-ASC-IP",
            PolicyKind::LrbScip => "LRB-SCIP",
            PolicyKind::LrbAscIp => "LRB-ASC-IP",
        }
    }

    /// Instantiate the policy at `capacity` bytes.
    pub fn build(self, capacity: u64, ctx: &TraceCtx) -> Box<dyn CachePolicy> {
        let seed = ctx.seed;
        match self {
            PolicyKind::Lru => Box::new(Lru::new(capacity)),
            PolicyKind::Lip => Box::new(InsertionCache::new(Lip, capacity, "LIP")),
            PolicyKind::Bip => {
                Box::new(InsertionCache::new(Bip::new(seed), capacity, "BIP"))
            }
            PolicyKind::Dip => {
                Box::new(InsertionCache::new(Dip::new(seed), capacity, "DIP"))
            }
            PolicyKind::Pipp => Box::new(Pipp::new(capacity, seed)),
            PolicyKind::Dta => {
                Box::new(InsertionCache::new(Dta::new(1 << 15), capacity, "DTA"))
            }
            PolicyKind::Ship => {
                Box::new(InsertionCache::new(Ship::new(), capacity, "SHiP"))
            }
            PolicyKind::Dgippr => Box::new(Dgippr::new(capacity, seed)),
            PolicyKind::Daaip => {
                Box::new(InsertionCache::new(Daaip::new(1 << 15), capacity, "DAAIP"))
            }
            PolicyKind::AscIp => Box::new(InsertionCache::new(
                AscIp::default_for_cdn(),
                capacity,
                "ASC-IP",
            )),
            PolicyKind::Sci => Box::new(Sci::new(capacity, seed)),
            PolicyKind::Scip => Box::new(Scip::with_config(
                capacity,
                ScipConfig {
                    seed,
                    update_interval: (ctx.requests / 40).max(2_000),
                    ..ScipConfig::default()
                },
            )),
            PolicyKind::LruK => Box::new(LruK::new(capacity)),
            PolicyKind::S4Lru => Box::new(S4Lru::new(capacity)),
            PolicyKind::SsLru => Box::new(SsLru::new(capacity)),
            PolicyKind::Gdsf => Box::new(Gdsf::new(capacity)),
            PolicyKind::Lhd => Box::new(Lhd::new(capacity, seed)),
            PolicyKind::Arc => Box::new(ArcPolicy::new(capacity)),
            PolicyKind::LeCar => Box::new(LeCar::new(capacity, seed)),
            PolicyKind::Cacheus => Box::new(Cacheus::new(capacity, seed)),
            PolicyKind::Lrb => {
                Box::new(Lrb::with_config(capacity, ctx.lrb_config(), seed))
            }
            PolicyKind::GlCache => Box::new(GlCache::new(capacity)),
            PolicyKind::TwoQ => Box::new(TwoQ::new(capacity)),
            PolicyKind::TinyLfu => Box::new(TinyLfu::new(capacity)),
            PolicyKind::AdaptSize => Box::new(AdaptSize::new(capacity, seed)),
            PolicyKind::Belady => {
                Box::new(BeladyPolicy::new(capacity, ctx.next_access.clone()))
            }
            PolicyKind::LruKScip => Box::new(scip::enhance::lruk_scip(capacity, 2, seed)),
            PolicyKind::LruKAscIp => Box::new(scip::enhance::lruk_ascip(capacity, 2)),
            PolicyKind::LrbScip => {
                Box::new(scip::enhance::lrb_scip(capacity, ctx.lrb_config(), seed))
            }
            PolicyKind::LrbAscIp => {
                Box::new(scip::enhance::lrb_ascip(capacity, ctx.lrb_config(), seed))
            }
        }
    }
}

/// Everything one instrumented replay measures.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Policy label.
    pub policy: String,
    /// Object miss ratio.
    pub miss_ratio: f64,
    /// Byte miss ratio.
    pub byte_miss_ratio: f64,
    /// Requests per wall-clock second (Figure 9(c)/11(c)'s TPS).
    pub tps: f64,
    /// Mean CPU time per request, nanoseconds (the peak-CPU-utilisation
    /// proxy of Figure 9(a)/11(a): relative policy compute cost).
    pub ns_per_request: f64,
    /// Peak policy-metadata bytes observed (Figure 9(b)/11(b)).
    pub peak_memory_bytes: usize,
}

/// Replay `trace` through a freshly built `kind`, measuring quality and
/// resource proxies.
pub fn run_policy(kind: PolicyKind, capacity: u64, trace: &[Request], ctx: &TraceCtx) -> RunMeasurement {
    let mut policy = kind.build(capacity, ctx);
    let mut m = cdn_cache::MissRatio::new();
    let mut peak_mem = 0usize;
    // Sample memory every ~1k requests: memory_bytes() walks structures.
    let mem_stride = (trace.len() / 512).max(1);
    let start = Instant::now();
    for (i, r) in trace.iter().enumerate() {
        if policy.on_request(r).is_hit() {
            m.record_hit(r.size);
        } else {
            m.record_miss(r.size);
        }
        if i % mem_stride == 0 {
            peak_mem = peak_mem.max(policy.memory_bytes());
        }
    }
    let elapsed = start.elapsed();
    peak_mem = peak_mem.max(policy.memory_bytes());
    let secs = elapsed.as_secs_f64().max(1e-9);
    RunMeasurement {
        policy: kind.label().to_string(),
        miss_ratio: m.miss_ratio(),
        byte_miss_ratio: m.byte_miss_ratio(),
        tps: trace.len() as f64 / secs,
        ns_per_request: elapsed.as_nanos() as f64 / trace.len() as f64,
        peak_memory_bytes: peak_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    #[test]
    fn every_policy_builds_and_runs() {
        let reqs: Vec<(u64, u64)> = (0..3_000).map(|i| (i * 7 % 200, 1 + i % 50)).collect();
        let trace = micro_trace(&reqs);
        let ctx = TraceCtx::new(&trace, 1);
        let all = [
            PolicyKind::Lru,
            PolicyKind::Lip,
            PolicyKind::Bip,
            PolicyKind::Dip,
            PolicyKind::Pipp,
            PolicyKind::Dta,
            PolicyKind::Ship,
            PolicyKind::Dgippr,
            PolicyKind::Daaip,
            PolicyKind::AscIp,
            PolicyKind::Sci,
            PolicyKind::Scip,
            PolicyKind::LruK,
            PolicyKind::S4Lru,
            PolicyKind::SsLru,
            PolicyKind::Gdsf,
            PolicyKind::Lhd,
            PolicyKind::Arc,
            PolicyKind::LeCar,
            PolicyKind::Cacheus,
            PolicyKind::Lrb,
            PolicyKind::GlCache,
            PolicyKind::TwoQ,
            PolicyKind::TinyLfu,
            PolicyKind::AdaptSize,
            PolicyKind::Belady,
            PolicyKind::LruKScip,
            PolicyKind::LruKAscIp,
            PolicyKind::LrbScip,
            PolicyKind::LrbAscIp,
        ];
        for kind in all {
            let r = run_policy(kind, 1_000, &trace, &ctx);
            assert!(
                (0.0..=1.0).contains(&r.miss_ratio),
                "{}: mr {}",
                r.policy,
                r.miss_ratio
            );
            assert!(r.tps > 0.0);
            assert!(r.peak_memory_bytes > 0, "{}", r.policy);
        }
    }

    #[test]
    fn belady_is_the_floor() {
        let reqs: Vec<(u64, u64)> = (0..5_000).map(|i| (i * 13 % 300, 1 + i % 20)).collect();
        let trace = micro_trace(&reqs);
        let ctx = TraceCtx::new(&trace, 2);
        let belady = run_policy(PolicyKind::Belady, 800, &trace, &ctx).miss_ratio;
        for kind in [PolicyKind::Lru, PolicyKind::Scip, PolicyKind::S4Lru] {
            let mr = run_policy(kind, 800, &trace, &ctx).miss_ratio;
            assert!(belady <= mr + 1e-9, "{kind:?}: {mr} < belady {belady}");
        }
    }
}
