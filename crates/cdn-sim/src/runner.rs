//! Policy registry and instrumented replay.
//!
//! [`PolicyKind`] dispatches **once per run**, not once per request: the
//! `dispatch_policy!` macro builds the concrete policy type for a kind and
//! hands it to a generic replay loop, so the whole per-request path
//! monomorphizes (no virtual call, full inlining). The boxed
//! [`PolicyKind::build`] constructor and [`run_policy_dyn`] keep the
//! `dyn CachePolicy` path available for heterogeneous collections and as
//! the reference the equivalence tests and the throughput harness's
//! speedup baseline compare against.

use std::sync::Arc;
use std::time::Instant;

use cdn_cache::{AccessKind, CachePolicy, ObjectId, Request};
use cdn_policies::admission::{AdaptSize, TinyLfu, TwoQ};
use cdn_policies::insertion::{
    deciders::{Bip, Lip},
    AscIp, Daaip, Dgippr, Dip, Dta, InsertionCache, Pipp, Ship,
};
use cdn_policies::replacement::{
    Arc as ArcPolicy, BeladyPolicy, Cacheus, Gdsf, GlCache, LeCar, Lhd, Lrb, LrbConfig, Lru, LruK,
    S4Lru, SsLru,
};
use cdn_trace::next_access_table;
use cdn_trace::TraceColumns;
use scip::{Sci, Scip, ScipConfig};

/// Per-trace context a policy build may need (Belady's oracle table,
/// scale-dependent LRB windows).
#[derive(Debug, Clone)]
pub struct TraceCtx {
    /// Precomputed next-access table of the trace being replayed.
    pub next_access: Arc<Vec<u64>>,
    /// Trace length in requests.
    pub requests: u64,
    /// Seed for stochastic policies.
    pub seed: u64,
}

impl TraceCtx {
    /// Build a context for a trace.
    pub fn new(trace: &[Request], seed: u64) -> Self {
        TraceCtx {
            next_access: Arc::new(next_access_table(trace)),
            requests: trace.len() as u64,
            seed,
        }
    }

    /// Context for an out-of-core replay, where no next-access oracle can
    /// exist (the trace never sits in RAM): empty table, scale fields
    /// from the stream's (untrusted) header count. Every policy except
    /// [`PolicyKind::Belady`] — which indexes the oracle positionally —
    /// works unchanged; streamed identity tests that include Belady build
    /// a full [`TraceCtx::new`] from the in-RAM trace and pass the *same*
    /// context to both sides instead.
    pub fn without_oracle(requests: u64, seed: u64) -> Self {
        TraceCtx {
            next_access: Arc::new(Vec::new()),
            requests,
            seed,
        }
    }

    fn lrb_config(&self) -> LrbConfig {
        LrbConfig {
            memory_window: (self.requests / 8).max(20_000),
            train_interval: (self.requests / 40).max(5_000),
            ..LrbConfig::default()
        }
    }
}

/// Every buildable algorithm in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PolicyKind {
    // Insertion/promotion policies (LRU victim selection).
    Lru,
    Lip,
    Bip,
    Dip,
    Pipp,
    Dta,
    Ship,
    Dgippr,
    Daaip,
    AscIp,
    Sci,
    Scip,
    // Replacement algorithms.
    LruK,
    S4Lru,
    SsLru,
    Gdsf,
    Lhd,
    Arc,
    LeCar,
    Cacheus,
    Lrb,
    GlCache,
    // Admission family (§7 related work, beyond the paper's figures).
    TwoQ,
    TinyLfu,
    AdaptSize,
    // Oracle.
    Belady,
    // §4 enhancements (Figure 12).
    LruKScip,
    LruKAscIp,
    LrbScip,
    LrbAscIp,
}

/// Build the concrete policy type for a [`PolicyKind`] and hand it to the
/// generic callable `$go` (plus trailing arguments), so every caller
/// dispatches once per run instead of once per request. `$go` must be the
/// name of a function generic over `P: CachePolicy`.
macro_rules! dispatch_policy {
    ($kind:expr, $capacity:expr, $ctx:expr, $go:ident($($extra:expr),*)) => {{
        let ctx: &TraceCtx = $ctx;
        let capacity: u64 = $capacity;
        let seed = ctx.seed;
        match $kind {
            PolicyKind::Lru => $go(Lru::new(capacity) $(, $extra)*),
            PolicyKind::Lip => {
                $go(InsertionCache::new(Lip, capacity, "LIP") $(, $extra)*)
            }
            PolicyKind::Bip => {
                $go(InsertionCache::new(Bip::new(seed), capacity, "BIP") $(, $extra)*)
            }
            PolicyKind::Dip => {
                $go(InsertionCache::new(Dip::new(seed), capacity, "DIP") $(, $extra)*)
            }
            PolicyKind::Pipp => $go(Pipp::new(capacity, seed) $(, $extra)*),
            PolicyKind::Dta => {
                $go(InsertionCache::new(Dta::new(1 << 15), capacity, "DTA") $(, $extra)*)
            }
            PolicyKind::Ship => {
                $go(InsertionCache::new(Ship::new(), capacity, "SHiP") $(, $extra)*)
            }
            PolicyKind::Dgippr => $go(Dgippr::new(capacity, seed) $(, $extra)*),
            PolicyKind::Daaip => $go(
                InsertionCache::new(Daaip::new(1 << 15), capacity, "DAAIP") $(, $extra)*
            ),
            PolicyKind::AscIp => $go(
                InsertionCache::new(AscIp::default_for_cdn(), capacity, "ASC-IP")
                $(, $extra)*
            ),
            PolicyKind::Sci => $go(Sci::new(capacity, seed) $(, $extra)*),
            PolicyKind::Scip => $go(
                Scip::with_config(
                    capacity,
                    ScipConfig {
                        seed,
                        update_interval: (ctx.requests / 40).max(2_000),
                        ..ScipConfig::default()
                    },
                ) $(, $extra)*
            ),
            PolicyKind::LruK => $go(LruK::new(capacity) $(, $extra)*),
            PolicyKind::S4Lru => $go(S4Lru::new(capacity) $(, $extra)*),
            PolicyKind::SsLru => $go(SsLru::new(capacity) $(, $extra)*),
            PolicyKind::Gdsf => $go(Gdsf::new(capacity) $(, $extra)*),
            PolicyKind::Lhd => $go(Lhd::new(capacity, seed) $(, $extra)*),
            PolicyKind::Arc => $go(ArcPolicy::new(capacity) $(, $extra)*),
            PolicyKind::LeCar => $go(LeCar::new(capacity, seed) $(, $extra)*),
            PolicyKind::Cacheus => $go(Cacheus::new(capacity, seed) $(, $extra)*),
            PolicyKind::Lrb => {
                $go(Lrb::with_config(capacity, ctx.lrb_config(), seed) $(, $extra)*)
            }
            PolicyKind::GlCache => $go(GlCache::new(capacity) $(, $extra)*),
            PolicyKind::TwoQ => $go(TwoQ::new(capacity) $(, $extra)*),
            PolicyKind::TinyLfu => $go(TinyLfu::new(capacity) $(, $extra)*),
            PolicyKind::AdaptSize => $go(AdaptSize::new(capacity, seed) $(, $extra)*),
            PolicyKind::Belady => {
                $go(BeladyPolicy::new(capacity, ctx.next_access.clone()) $(, $extra)*)
            }
            PolicyKind::LruKScip => {
                $go(scip::enhance::lruk_scip(capacity, 2, seed) $(, $extra)*)
            }
            PolicyKind::LruKAscIp => {
                $go(scip::enhance::lruk_ascip(capacity, 2) $(, $extra)*)
            }
            PolicyKind::LrbScip => {
                $go(scip::enhance::lrb_scip(capacity, ctx.lrb_config(), seed) $(, $extra)*)
            }
            PolicyKind::LrbAscIp => {
                $go(scip::enhance::lrb_ascip(capacity, ctx.lrb_config(), seed) $(, $extra)*)
            }
        }
    }};
}

impl PolicyKind {
    /// Every buildable algorithm, in declaration order — the sweep the
    /// robustness harness drives adversarial and degenerate traces
    /// through. Keep in sync with the enum (the `all_is_exhaustive` test
    /// rebuilds each entry and checks for duplicates).
    pub const ALL: [PolicyKind; 30] = [
        PolicyKind::Lru,
        PolicyKind::Lip,
        PolicyKind::Bip,
        PolicyKind::Dip,
        PolicyKind::Pipp,
        PolicyKind::Dta,
        PolicyKind::Ship,
        PolicyKind::Dgippr,
        PolicyKind::Daaip,
        PolicyKind::AscIp,
        PolicyKind::Sci,
        PolicyKind::Scip,
        PolicyKind::LruK,
        PolicyKind::S4Lru,
        PolicyKind::SsLru,
        PolicyKind::Gdsf,
        PolicyKind::Lhd,
        PolicyKind::Arc,
        PolicyKind::LeCar,
        PolicyKind::Cacheus,
        PolicyKind::Lrb,
        PolicyKind::GlCache,
        PolicyKind::TwoQ,
        PolicyKind::TinyLfu,
        PolicyKind::AdaptSize,
        PolicyKind::Belady,
        PolicyKind::LruKScip,
        PolicyKind::LruKAscIp,
        PolicyKind::LrbScip,
        PolicyKind::LrbAscIp,
    ];

    /// The paper's eight insertion-policy baselines (Figure 8/9 order).
    pub const INSERTION_BASELINES: [PolicyKind; 8] = [
        PolicyKind::Lip,
        PolicyKind::Dip,
        PolicyKind::Pipp,
        PolicyKind::Dta,
        PolicyKind::Ship,
        PolicyKind::Dgippr,
        PolicyKind::Daaip,
        PolicyKind::AscIp,
    ];

    /// The paper's eight replacement-algorithm baselines (Figure 10/11;
    /// LRU-K, S4LRU, SS-LRU, GDSF, LHD, CACHEUS, LRB, GL-Cache).
    pub const REPLACEMENT_BASELINES: [PolicyKind; 8] = [
        PolicyKind::LruK,
        PolicyKind::S4Lru,
        PolicyKind::SsLru,
        PolicyKind::Gdsf,
        PolicyKind::Lhd,
        PolicyKind::Cacheus,
        PolicyKind::Lrb,
        PolicyKind::GlCache,
    ];

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Lip => "LIP",
            PolicyKind::Bip => "BIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Pipp => "PIPP",
            PolicyKind::Dta => "DTA",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Dgippr => "DGIPPR",
            PolicyKind::Daaip => "DAAIP",
            PolicyKind::AscIp => "ASC-IP",
            PolicyKind::Sci => "SCI",
            PolicyKind::Scip => "SCIP",
            PolicyKind::LruK => "LRU-K",
            PolicyKind::S4Lru => "S4LRU",
            PolicyKind::SsLru => "SS-LRU",
            PolicyKind::Gdsf => "GDSF",
            PolicyKind::Lhd => "LHD",
            PolicyKind::Arc => "ARC",
            PolicyKind::LeCar => "LeCaR",
            PolicyKind::Cacheus => "CACHEUS",
            PolicyKind::Lrb => "LRB",
            PolicyKind::GlCache => "GL-Cache",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::TinyLfu => "TinyLFU",
            PolicyKind::AdaptSize => "AdaptSize",
            PolicyKind::Belady => "Belady",
            PolicyKind::LruKScip => "LRU-K-SCIP",
            PolicyKind::LruKAscIp => "LRU-K-ASC-IP",
            PolicyKind::LrbScip => "LRB-SCIP",
            PolicyKind::LrbAscIp => "LRB-ASC-IP",
        }
    }

    /// Stable checkpoint fingerprint of the sweep cell this kind would
    /// run: label + cache size + trace content hash + seed (see
    /// [`crate::checkpoint::job_fingerprint`]).
    pub fn fingerprint(self, cache_bytes: u64, trace_hash: u64, seed: u64) -> String {
        crate::checkpoint::job_fingerprint(self.label(), cache_bytes, trace_hash, seed)
    }

    /// Instantiate the policy at `capacity` bytes, boxed for heterogeneous
    /// collections. Hot sweep paths should prefer the monomorphized
    /// [`PolicyKind::run_monomorphized`] family instead.
    pub fn build(self, capacity: u64, ctx: &TraceCtx) -> Box<dyn CachePolicy> {
        fn boxed<P: CachePolicy + 'static>(p: P) -> Box<dyn CachePolicy> {
            Box::new(p)
        }
        dispatch_policy!(self, capacity, ctx, boxed())
    }

    /// Replay `trace` through a freshly built policy with static dispatch:
    /// one `match` per run selects the concrete type, then the whole
    /// per-request loop monomorphizes. Pipelining follows
    /// [`BatchMode::from_env`].
    pub fn run_monomorphized(
        self,
        capacity: u64,
        trace: &[Request],
        ctx: &TraceCtx,
    ) -> RunMeasurement {
        fn go<P: CachePolicy>(policy: P, label: &'static str, trace: &[Request]) -> RunMeasurement {
            instrumented_replay(policy, label, trace, BatchMode::from_env())
        }
        dispatch_policy!(self, capacity, ctx, go(self.label(), trace))
    }

    /// Replay `trace` with static dispatch, invoking `observe` after every
    /// request with `(index, request, outcome, used_bytes, capacity)`.
    ///
    /// This is the hook the model-check suite drives adversarial traces
    /// through: the observer can assert per-step invariants (occupancy ≤
    /// capacity, oversized ⇒ [`AccessKind::Rejected`], …) against any
    /// [`PolicyKind`] without each test reimplementing dispatch.
    pub fn run_with_observer<F>(self, capacity: u64, trace: &[Request], ctx: &TraceCtx, observe: F)
    where
        F: FnMut(usize, &Request, AccessKind, u64, u64),
    {
        fn go<P: CachePolicy, F: FnMut(usize, &Request, AccessKind, u64, u64)>(
            mut policy: P,
            trace: &[Request],
            mut observe: F,
        ) {
            for (i, req) in trace.iter().enumerate() {
                let outcome = policy.on_request(req);
                observe(i, req, outcome, policy.used_bytes(), policy.capacity());
            }
        }
        dispatch_policy!(self, capacity, ctx, go(trace, observe))
    }

    /// [`PolicyKind::run_monomorphized`] over a structure-of-arrays trace
    /// (the layout the sweep shares across workers). Pipelining follows
    /// [`BatchMode::from_env`].
    pub fn run_monomorphized_columns(
        self,
        capacity: u64,
        trace: &TraceColumns,
        ctx: &TraceCtx,
    ) -> RunMeasurement {
        self.replay_batched(capacity, trace, ctx, BatchMode::from_env())
    }

    /// The batched replay entry point: replay a structure-of-arrays trace
    /// with an explicit [`BatchMode`] (callers that must not consult the
    /// environment — bench sections, identity tests — pass the mode
    /// directly).
    pub fn replay_batched(
        self,
        capacity: u64,
        trace: &TraceColumns,
        ctx: &TraceCtx,
        mode: BatchMode,
    ) -> RunMeasurement {
        fn go<P: CachePolicy>(
            policy: P,
            label: &'static str,
            trace: &TraceColumns,
            mode: BatchMode,
        ) -> RunMeasurement {
            instrumented_replay(policy, label, trace, mode)
        }
        dispatch_policy!(self, capacity, ctx, go(self.label(), trace, mode))
    }

    /// Replay a chunk stream (out-of-core trace) through a freshly built
    /// policy with static dispatch. One policy instance and one ledger
    /// persist across every chunk, and the per-request instructions are
    /// the same monomorphized hot loop the in-RAM
    /// [`PolicyKind::replay_batched`] runs, so the returned ledgers
    /// (`hits`/`misses`/`hit_bytes`/`miss_bytes`) are u64-identical to an
    /// in-RAM replay of the concatenated trace (pinned for all of
    /// [`PolicyKind::ALL`] by `tests/stream_identity.rs`).
    ///
    /// The first `Err` in the stream aborts the replay and is returned —
    /// a corrupt chunk can never produce a silently partial measurement.
    /// `ctx.requests` should carry the stream's header count (it sizes
    /// the memory-sampling stride and scale-dependent policy windows).
    pub fn replay_stream<I, E>(
        self,
        capacity: u64,
        chunks: I,
        ctx: &TraceCtx,
        mode: BatchMode,
    ) -> Result<RunMeasurement, E>
    where
        I: IntoIterator<Item = Result<TraceColumns, E>>,
    {
        fn go<P: CachePolicy, I, E>(
            policy: P,
            label: &'static str,
            chunks: I,
            total_hint: usize,
            mode: BatchMode,
        ) -> Result<RunMeasurement, E>
        where
            I: IntoIterator<Item = Result<TraceColumns, E>>,
        {
            instrumented_replay_stream(policy, label, chunks, total_hint, mode)
        }
        let total_hint = ctx.requests as usize;
        dispatch_policy!(
            self,
            capacity,
            ctx,
            go(self.label(), chunks, total_hint, mode)
        )
    }

    /// [`PolicyKind::run_with_observer`] over a chunk stream: the same
    /// plain per-request loop, one policy instance across chunks, with
    /// the observer seeing the global request index. Returns the first
    /// stream error, after the observer has seen every request decoded
    /// before the failure point.
    pub fn run_with_observer_stream<I, E, F>(
        self,
        capacity: u64,
        chunks: I,
        ctx: &TraceCtx,
        observe: F,
    ) -> Result<(), E>
    where
        I: IntoIterator<Item = Result<TraceColumns, E>>,
        F: FnMut(usize, &Request, AccessKind, u64, u64),
    {
        fn go<P, I, E, F>(mut policy: P, chunks: I, mut observe: F) -> Result<(), E>
        where
            P: CachePolicy,
            I: IntoIterator<Item = Result<TraceColumns, E>>,
            F: FnMut(usize, &Request, AccessKind, u64, u64),
        {
            let mut i = 0usize;
            for chunk in chunks {
                let chunk = chunk?;
                for j in 0..chunk.len() {
                    let req = chunk.get(j);
                    let outcome = policy.on_request(&req);
                    observe(i, &req, outcome, policy.used_bytes(), policy.capacity());
                    i += 1;
                }
            }
            Ok(())
        }
        dispatch_policy!(self, capacity, ctx, go(chunks, observe))
    }

    /// [`PolicyKind::run_with_observer`] through the software-pipelined
    /// loop at a fixed lookahead. Exists so the batched-identity suite can
    /// compare outcome streams against the straight loop for every policy
    /// — hints must never change behaviour.
    pub fn run_with_observer_batched<F>(
        self,
        capacity: u64,
        trace: &[Request],
        ctx: &TraceCtx,
        lookahead: usize,
        observe: F,
    ) where
        F: FnMut(usize, &Request, AccessKind, u64, u64),
    {
        fn go<P: CachePolicy, F: FnMut(usize, &Request, AccessKind, u64, u64)>(
            mut policy: P,
            trace: &[Request],
            lookahead: usize,
            mut observe: F,
        ) {
            let lookahead = lookahead.min(MAX_PREFETCH_DIST);
            let source = trace;
            if lookahead > 0 {
                prime_window(&policy, &source, 0, lookahead);
            }
            for (i, req) in trace.iter().enumerate() {
                if lookahead > 0 {
                    let ahead = i + lookahead;
                    if ahead < RequestSource::len(&source) {
                        policy.prefetch_hint(RequestSource::id(&source, ahead));
                    }
                }
                let outcome = policy.on_request(req);
                observe(i, req, outcome, policy.used_bytes(), policy.capacity());
            }
        }
        dispatch_policy!(self, capacity, ctx, go(trace, lookahead, observe))
    }
}

/// Everything one instrumented replay measures.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Policy label.
    pub policy: String,
    /// Object miss ratio.
    pub miss_ratio: f64,
    /// Byte miss ratio.
    pub byte_miss_ratio: f64,
    /// Requests per wall-clock second (Figure 9(c)/11(c)'s TPS).
    pub tps: f64,
    /// Mean CPU time per request, nanoseconds (the peak-CPU-utilisation
    /// proxy of Figure 9(a)/11(a): relative policy compute cost).
    pub ns_per_request: f64,
    /// Peak policy-metadata bytes observed (Figure 9(b)/11(b)).
    pub peak_memory_bytes: usize,
    /// Objects resident at the end of the replay (steady-state working
    /// set). Divides into `peak_memory_bytes` for a bytes-per-resident-
    /// object density figure.
    pub resident_objects: usize,
    /// Raw hit count — the exact ledger behind `miss_ratio`, kept so
    /// sharded aggregates can be proven *exactly* equal to a serial
    /// per-partition reference (float ratios would only be approximately
    /// comparable).
    pub hits: u64,
    /// Raw miss count (rejections included, as in `miss_ratio`).
    pub misses: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes that missed (back-to-origin traffic).
    pub miss_bytes: u64,
}

impl RunMeasurement {
    /// Total requests this measurement covers.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// How the replay loop decides its software-pipelining lookahead.
///
/// With lookahead `K`, the loop issues a [`CachePolicy::prefetch_hint`]
/// for request `i + K` while processing request `i`, so the index-bucket
/// DRAM miss of a future probe overlaps policy work instead of
/// serialising behind it. Hints are advisory: outcomes are bit-identical
/// to the straight loop at every depth (pinned by
/// `tests/batched_identity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Straight-line loop, no hints.
    Off,
    /// Always pipeline at this depth (clamped to [`MAX_PREFETCH_DIST`]).
    Fixed(usize),
    /// Start straight-line; switch to [`AUTO_PREFETCH_DIST`] mid-replay
    /// once the policy's metadata footprint exceeds the LLC
    /// ([`cdn_cache::llc_bytes`]). An L2/L3-resident index has no DRAM
    /// latency to hide — there the hint is pure dispatch cost (PR 5
    /// measured ~20 ns/request for the old always-on ring) — but once the
    /// index spills to DRAM the overlap wins.
    Auto,
}

/// Pipeline depth the [`BatchMode::Auto`] heuristic engages.
pub const AUTO_PREFETCH_DIST: usize = 8;
/// Hard cap on the pipeline depth (beyond this, hinted lines are evicted
/// again before their probe arrives).
pub const MAX_PREFETCH_DIST: usize = 64;

impl BatchMode {
    /// Resolve from `REPLAY_PREFETCH_DIST`: unset or `auto` → [`Auto`],
    /// `0` → [`Off`], `K` → [`Fixed`]`(K)`.
    ///
    /// [`Auto`]: BatchMode::Auto
    /// [`Off`]: BatchMode::Off
    /// [`Fixed`]: BatchMode::Fixed
    pub fn from_env() -> BatchMode {
        match std::env::var("REPLAY_PREFETCH_DIST") {
            Err(_) => BatchMode::Auto,
            Ok(v) => {
                let v = v.trim();
                if v.is_empty() || v.eq_ignore_ascii_case("auto") {
                    BatchMode::Auto
                } else {
                    match v.parse::<usize>() {
                        Ok(0) => BatchMode::Off,
                        Ok(k) => BatchMode::Fixed(k),
                        Err(_) => BatchMode::Auto,
                    }
                }
            }
        }
    }

    /// Initial lookahead for this mode.
    fn initial_lookahead(self) -> usize {
        match self {
            BatchMode::Off | BatchMode::Auto => 0,
            BatchMode::Fixed(k) => k.min(MAX_PREFETCH_DIST),
        }
    }
}

/// Anything the replay loop can stream requests out of by index — the
/// interleaved `&[Request]` layout and the structure-of-arrays
/// [`TraceColumns`] both qualify. Indexed access (rather than an
/// iterator) is what lets the pipelined loop peek at the id of request
/// `i + K` without buffering `K` pending requests in a ring.
pub trait RequestSource {
    /// Requests available.
    fn len(&self) -> usize;
    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Reassemble request `i`.
    fn get(&self, i: usize) -> Request;
    /// Object id of request `i` (the only field the lookahead needs — on
    /// the SoA layout this touches just the id column).
    fn id(&self, i: usize) -> ObjectId;
}

impl RequestSource for &[Request] {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }
    #[inline]
    fn get(&self, i: usize) -> Request {
        self[i]
    }
    #[inline]
    fn id(&self, i: usize) -> ObjectId {
        self[i].id
    }
}

impl RequestSource for &TraceColumns {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }
    #[inline]
    fn get(&self, i: usize) -> Request {
        (**self).get(i)
    }
    #[inline]
    fn id(&self, i: usize) -> ObjectId {
        self.ids[i]
    }
}

/// The instrumented replay loop behind every measurement: generic over
/// the policy so concrete callers monomorphize, while `Box<dyn
/// CachePolicy>` (via [`run_policy_dyn`]) keeps the virtual-dispatch
/// reference path on the exact same loop.
///
/// Software pipelining: with lookahead `K`, the loop primes the first
/// window with one [`CachePolicy::prefetch_batch`] call, then sustains a
/// constant distance — hint `i + K`, process `i` — by direct indexing
/// into the source (no pending ring, no per-request queue traffic).
/// Ordering and outcomes are identical to the straight loop; only
/// memory-system timing changes. Under [`BatchMode::Auto`] the loop
/// starts straight-line and engages the pipeline at the first metadata
/// sample whose footprint exceeds the LLC.
fn instrumented_replay<P, S>(
    mut policy: P,
    label: &str,
    source: S,
    mode: BatchMode,
) -> RunMeasurement
where
    P: CachePolicy,
    S: RequestSource,
{
    let n = source.len();
    let mut m = cdn_cache::MissRatio::new();
    let mut peak_mem = 0usize;
    // Sample memory every ~1k requests: memory_bytes() walks structures.
    let mem_stride = (n / 512).max(1);
    let llc = cdn_cache::llc_bytes();
    let mut lookahead = mode.initial_lookahead();
    let start = Instant::now();
    replay_span(
        &mut policy,
        &source,
        0,
        mem_stride,
        llc,
        mode,
        &mut lookahead,
        &mut m,
        &mut peak_mem,
    );
    let elapsed = start.elapsed();
    finish_measurement(&policy, label, n, &m, peak_mem, elapsed)
}

/// Replay a chunk stream through one freshly built policy, threading the
/// ledger and pipelining state across chunks so the replay is
/// indistinguishable from an in-RAM replay of the concatenated trace —
/// the inner loop is the exact [`replay_span`] the in-RAM path runs, so
/// streamed ledgers are u64-identical and throughput stays within the
/// hot-loop envelope. Only `STREAM_SLOTS + 1` chunks of trace ever exist
/// at once; policy state is the sole length-dependent allocation.
///
/// `total_hint` (the stream's header count) sizes the memory-sampling
/// stride; it is advisory only — a lying header changes sampling
/// granularity, never outcomes, and the measurement reports the requests
/// actually replayed.
fn instrumented_replay_stream<P, I, E>(
    mut policy: P,
    label: &str,
    chunks: I,
    total_hint: usize,
    mode: BatchMode,
) -> Result<RunMeasurement, E>
where
    P: CachePolicy,
    I: IntoIterator<Item = Result<TraceColumns, E>>,
{
    let mut m = cdn_cache::MissRatio::new();
    let mut peak_mem = 0usize;
    let mem_stride = (total_hint / 512).max(1);
    let llc = cdn_cache::llc_bytes();
    let mut lookahead = mode.initial_lookahead();
    let mut base = 0usize;
    let start = Instant::now();
    for chunk in chunks {
        let chunk = chunk?;
        replay_span(
            &mut policy,
            &&chunk,
            base,
            mem_stride,
            llc,
            mode,
            &mut lookahead,
            &mut m,
            &mut peak_mem,
        );
        base += chunk.len();
    }
    let elapsed = start.elapsed();
    Ok(finish_measurement(
        &policy, label, base, &m, peak_mem, elapsed,
    ))
}

/// The shared per-span hot loop: replay every request of `source` through
/// `policy`, recording hits/misses into `m`, sampling metadata footprint
/// into `peak_mem` on the global (`base`-offset) stride, and sustaining /
/// engaging the software pipeline via `lookahead`. In-RAM replays run one
/// span covering the whole trace; streamed replays run one span per chunk
/// with all mutable state threaded through, so both paths execute the
/// same monomorphized instructions per request.
///
/// The lookahead window never crosses a span boundary (the last
/// `lookahead` requests of a chunk go unhinted, and a pipelined span
/// re-primes its opening window): hints are advisory and proven
/// outcome-neutral, so ledgers are unaffected.
#[allow(clippy::too_many_arguments)]
#[inline]
fn replay_span<P: CachePolicy, S: RequestSource>(
    policy: &mut P,
    source: &S,
    base: usize,
    mem_stride: usize,
    llc: usize,
    mode: BatchMode,
    lookahead: &mut usize,
    m: &mut cdn_cache::MissRatio,
    peak_mem: &mut usize,
) {
    let n = source.len();
    if *lookahead > 0 {
        prime_window(policy, source, 0, *lookahead);
    }
    for i in 0..n {
        if *lookahead > 0 {
            let ahead = i + *lookahead;
            if ahead < n {
                policy.prefetch_hint(source.id(ahead));
            }
        }
        let r = source.get(i);
        if policy.on_request(&r).is_hit() {
            m.record_hit(r.size);
        } else {
            m.record_miss(r.size);
        }
        if (base + i).is_multiple_of(mem_stride) {
            let mem = policy.memory_bytes();
            *peak_mem = (*peak_mem).max(mem);
            if mode == BatchMode::Auto && *lookahead == 0 && mem > llc {
                // Index footprint has outgrown the LLC: probes now miss to
                // DRAM, so overlapping them starts paying. Engage the
                // pipeline and prime the window at the current position.
                *lookahead = AUTO_PREFETCH_DIST;
                prime_window(policy, source, i + 1, *lookahead);
            }
        }
    }
}

/// Fold the final policy state and ledger into a [`RunMeasurement`].
fn finish_measurement<P: CachePolicy>(
    policy: &P,
    label: &str,
    n: usize,
    m: &cdn_cache::MissRatio,
    peak_mem: usize,
    elapsed: std::time::Duration,
) -> RunMeasurement {
    let peak_mem = peak_mem.max(policy.memory_bytes());
    let secs = elapsed.as_secs_f64().max(1e-9);
    RunMeasurement {
        policy: label.to_string(),
        miss_ratio: m.miss_ratio(),
        byte_miss_ratio: m.byte_miss_ratio(),
        tps: n as f64 / secs,
        ns_per_request: elapsed.as_nanos() as f64 / n.max(1) as f64,
        peak_memory_bytes: peak_mem,
        resident_objects: policy.stats().resident_objects,
        hits: m.hits(),
        misses: m.misses(),
        hit_bytes: m.hit_bytes(),
        miss_bytes: m.miss_bytes(),
    }
}

/// Prime the pipeline: batch-hint the ids of requests
/// `[from, from + lookahead)` so the steady-state loop never probes a
/// cold bucket for its first `lookahead` requests.
fn prime_window<P: CachePolicy, S: RequestSource>(
    policy: &P,
    source: &S,
    from: usize,
    lookahead: usize,
) {
    let end = (from + lookahead).min(source.len());
    let ids: Vec<ObjectId> = (from..end).map(|i| source.id(i)).collect();
    policy.prefetch_batch(&ids);
}

/// Replay `trace` through a freshly built `kind`, measuring quality and
/// resource proxies. Statically dispatched (see
/// [`PolicyKind::run_monomorphized`]).
pub fn run_policy(
    kind: PolicyKind,
    capacity: u64,
    trace: &[Request],
    ctx: &TraceCtx,
) -> RunMeasurement {
    kind.run_monomorphized(capacity, trace, ctx)
}

/// [`run_policy`] forced through `Box<dyn CachePolicy>`: the per-request
/// virtual-dispatch reference the throughput harness compares the
/// monomorphized path against.
pub fn run_policy_dyn(
    kind: PolicyKind,
    capacity: u64,
    trace: &[Request],
    ctx: &TraceCtx,
) -> RunMeasurement {
    instrumented_replay(
        kind.build(capacity, ctx),
        kind.label(),
        trace,
        BatchMode::from_env(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    #[test]
    fn all_is_exhaustive() {
        // ALL must hold every distinct variant exactly once: labels are
        // unique per variant, so 30 distinct labels ⇒ 30 distinct kinds.
        let mut labels: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PolicyKind::ALL.len(), "duplicate in ALL");
    }

    #[test]
    fn run_with_observer_sees_every_request() {
        let reqs: Vec<(u64, u64)> = (0..500).map(|i| (i * 3 % 40, 1 + i % 9)).collect();
        let trace = micro_trace(&reqs);
        let ctx = TraceCtx::new(&trace, 3);
        let mut seen = 0usize;
        PolicyKind::Lru.run_with_observer(100, &trace, &ctx, |i, req, outcome, used, cap| {
            assert_eq!(i, seen);
            assert_eq!(req.id, trace[seen].id);
            assert!(used <= cap, "occupancy over capacity");
            assert!(outcome.is_hit() || !outcome.is_hit()); // exhaustive enum read
            seen += 1;
        });
        assert_eq!(seen, trace.len());
    }

    #[test]
    fn every_policy_builds_and_runs() {
        let reqs: Vec<(u64, u64)> = (0..3_000).map(|i| (i * 7 % 200, 1 + i % 50)).collect();
        let trace = micro_trace(&reqs);
        let ctx = TraceCtx::new(&trace, 1);
        for kind in PolicyKind::ALL {
            let r = run_policy(kind, 1_000, &trace, &ctx);
            assert!(
                (0.0..=1.0).contains(&r.miss_ratio),
                "{}: mr {}",
                r.policy,
                r.miss_ratio
            );
            assert!(r.tps > 0.0);
            assert!(r.peak_memory_bytes > 0, "{}", r.policy);
        }
    }

    #[test]
    fn mono_dyn_and_columns_agree() {
        let reqs: Vec<(u64, u64)> = (0..4_000).map(|i| (i * 17 % 250, 1 + i % 30)).collect();
        let trace = micro_trace(&reqs);
        let cols = TraceColumns::from_requests(&trace);
        let ctx = TraceCtx::new(&trace, 5);
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Dip,
            PolicyKind::TinyLfu,
            PolicyKind::Scip,
        ] {
            let mono = run_policy(kind, 900, &trace, &ctx);
            let dynamic = run_policy_dyn(kind, 900, &trace, &ctx);
            let columns = kind.run_monomorphized_columns(900, &cols, &ctx);
            for other in [&dynamic, &columns] {
                assert_eq!(mono.miss_ratio, other.miss_ratio, "{kind:?}");
                assert_eq!(mono.byte_miss_ratio, other.byte_miss_ratio, "{kind:?}");
            }
        }
    }

    #[test]
    fn belady_is_the_floor() {
        let reqs: Vec<(u64, u64)> = (0..5_000).map(|i| (i * 13 % 300, 1 + i % 20)).collect();
        let trace = micro_trace(&reqs);
        let ctx = TraceCtx::new(&trace, 2);
        let belady = run_policy(PolicyKind::Belady, 800, &trace, &ctx).miss_ratio;
        for kind in [PolicyKind::Lru, PolicyKind::Scip, PolicyKind::S4Lru] {
            let mr = run_policy(kind, 800, &trace, &ctx).miss_ratio;
            assert!(belady <= mr + 1e-9, "{kind:?}: {mr} < belady {belady}");
        }
    }
}
