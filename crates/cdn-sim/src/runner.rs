//! Policy registry and instrumented replay.
//!
//! [`PolicyKind`] dispatches **once per run**, not once per request: the
//! `dispatch_policy!` macro builds the concrete policy type for a kind and
//! hands it to a generic replay loop, so the whole per-request path
//! monomorphizes (no virtual call, full inlining). The boxed
//! [`PolicyKind::build`] constructor and [`run_policy_dyn`] keep the
//! `dyn CachePolicy` path available for heterogeneous collections and as
//! the reference the equivalence tests and the throughput harness's
//! speedup baseline compare against.

use std::sync::Arc;
use std::time::Instant;

use cdn_cache::{AccessKind, CachePolicy, Request};
use cdn_policies::admission::{AdaptSize, TinyLfu, TwoQ};
use cdn_policies::insertion::{
    deciders::{Bip, Lip},
    AscIp, Daaip, Dgippr, Dip, Dta, InsertionCache, Pipp, Ship,
};
use cdn_policies::replacement::{
    Arc as ArcPolicy, BeladyPolicy, Cacheus, Gdsf, GlCache, LeCar, Lhd, Lrb, LrbConfig, Lru, LruK,
    S4Lru, SsLru,
};
use cdn_trace::next_access_table;
use cdn_trace::TraceColumns;
use scip::{Sci, Scip, ScipConfig};

/// Per-trace context a policy build may need (Belady's oracle table,
/// scale-dependent LRB windows).
#[derive(Debug, Clone)]
pub struct TraceCtx {
    /// Precomputed next-access table of the trace being replayed.
    pub next_access: Arc<Vec<u64>>,
    /// Trace length in requests.
    pub requests: u64,
    /// Seed for stochastic policies.
    pub seed: u64,
}

impl TraceCtx {
    /// Build a context for a trace.
    pub fn new(trace: &[Request], seed: u64) -> Self {
        TraceCtx {
            next_access: Arc::new(next_access_table(trace)),
            requests: trace.len() as u64,
            seed,
        }
    }

    fn lrb_config(&self) -> LrbConfig {
        LrbConfig {
            memory_window: (self.requests / 8).max(20_000),
            train_interval: (self.requests / 40).max(5_000),
            ..LrbConfig::default()
        }
    }
}

/// Every buildable algorithm in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PolicyKind {
    // Insertion/promotion policies (LRU victim selection).
    Lru,
    Lip,
    Bip,
    Dip,
    Pipp,
    Dta,
    Ship,
    Dgippr,
    Daaip,
    AscIp,
    Sci,
    Scip,
    // Replacement algorithms.
    LruK,
    S4Lru,
    SsLru,
    Gdsf,
    Lhd,
    Arc,
    LeCar,
    Cacheus,
    Lrb,
    GlCache,
    // Admission family (§7 related work, beyond the paper's figures).
    TwoQ,
    TinyLfu,
    AdaptSize,
    // Oracle.
    Belady,
    // §4 enhancements (Figure 12).
    LruKScip,
    LruKAscIp,
    LrbScip,
    LrbAscIp,
}

/// Build the concrete policy type for a [`PolicyKind`] and hand it to the
/// generic callable `$go` (plus trailing arguments), so every caller
/// dispatches once per run instead of once per request. `$go` must be the
/// name of a function generic over `P: CachePolicy`.
macro_rules! dispatch_policy {
    ($kind:expr, $capacity:expr, $ctx:expr, $go:ident($($extra:expr),*)) => {{
        let ctx: &TraceCtx = $ctx;
        let capacity: u64 = $capacity;
        let seed = ctx.seed;
        match $kind {
            PolicyKind::Lru => $go(Lru::new(capacity) $(, $extra)*),
            PolicyKind::Lip => {
                $go(InsertionCache::new(Lip, capacity, "LIP") $(, $extra)*)
            }
            PolicyKind::Bip => {
                $go(InsertionCache::new(Bip::new(seed), capacity, "BIP") $(, $extra)*)
            }
            PolicyKind::Dip => {
                $go(InsertionCache::new(Dip::new(seed), capacity, "DIP") $(, $extra)*)
            }
            PolicyKind::Pipp => $go(Pipp::new(capacity, seed) $(, $extra)*),
            PolicyKind::Dta => {
                $go(InsertionCache::new(Dta::new(1 << 15), capacity, "DTA") $(, $extra)*)
            }
            PolicyKind::Ship => {
                $go(InsertionCache::new(Ship::new(), capacity, "SHiP") $(, $extra)*)
            }
            PolicyKind::Dgippr => $go(Dgippr::new(capacity, seed) $(, $extra)*),
            PolicyKind::Daaip => $go(
                InsertionCache::new(Daaip::new(1 << 15), capacity, "DAAIP") $(, $extra)*
            ),
            PolicyKind::AscIp => $go(
                InsertionCache::new(AscIp::default_for_cdn(), capacity, "ASC-IP")
                $(, $extra)*
            ),
            PolicyKind::Sci => $go(Sci::new(capacity, seed) $(, $extra)*),
            PolicyKind::Scip => $go(
                Scip::with_config(
                    capacity,
                    ScipConfig {
                        seed,
                        update_interval: (ctx.requests / 40).max(2_000),
                        ..ScipConfig::default()
                    },
                ) $(, $extra)*
            ),
            PolicyKind::LruK => $go(LruK::new(capacity) $(, $extra)*),
            PolicyKind::S4Lru => $go(S4Lru::new(capacity) $(, $extra)*),
            PolicyKind::SsLru => $go(SsLru::new(capacity) $(, $extra)*),
            PolicyKind::Gdsf => $go(Gdsf::new(capacity) $(, $extra)*),
            PolicyKind::Lhd => $go(Lhd::new(capacity, seed) $(, $extra)*),
            PolicyKind::Arc => $go(ArcPolicy::new(capacity) $(, $extra)*),
            PolicyKind::LeCar => $go(LeCar::new(capacity, seed) $(, $extra)*),
            PolicyKind::Cacheus => $go(Cacheus::new(capacity, seed) $(, $extra)*),
            PolicyKind::Lrb => {
                $go(Lrb::with_config(capacity, ctx.lrb_config(), seed) $(, $extra)*)
            }
            PolicyKind::GlCache => $go(GlCache::new(capacity) $(, $extra)*),
            PolicyKind::TwoQ => $go(TwoQ::new(capacity) $(, $extra)*),
            PolicyKind::TinyLfu => $go(TinyLfu::new(capacity) $(, $extra)*),
            PolicyKind::AdaptSize => $go(AdaptSize::new(capacity, seed) $(, $extra)*),
            PolicyKind::Belady => {
                $go(BeladyPolicy::new(capacity, ctx.next_access.clone()) $(, $extra)*)
            }
            PolicyKind::LruKScip => {
                $go(scip::enhance::lruk_scip(capacity, 2, seed) $(, $extra)*)
            }
            PolicyKind::LruKAscIp => {
                $go(scip::enhance::lruk_ascip(capacity, 2) $(, $extra)*)
            }
            PolicyKind::LrbScip => {
                $go(scip::enhance::lrb_scip(capacity, ctx.lrb_config(), seed) $(, $extra)*)
            }
            PolicyKind::LrbAscIp => {
                $go(scip::enhance::lrb_ascip(capacity, ctx.lrb_config(), seed) $(, $extra)*)
            }
        }
    }};
}

impl PolicyKind {
    /// Every buildable algorithm, in declaration order — the sweep the
    /// robustness harness drives adversarial and degenerate traces
    /// through. Keep in sync with the enum (the `all_is_exhaustive` test
    /// rebuilds each entry and checks for duplicates).
    pub const ALL: [PolicyKind; 30] = [
        PolicyKind::Lru,
        PolicyKind::Lip,
        PolicyKind::Bip,
        PolicyKind::Dip,
        PolicyKind::Pipp,
        PolicyKind::Dta,
        PolicyKind::Ship,
        PolicyKind::Dgippr,
        PolicyKind::Daaip,
        PolicyKind::AscIp,
        PolicyKind::Sci,
        PolicyKind::Scip,
        PolicyKind::LruK,
        PolicyKind::S4Lru,
        PolicyKind::SsLru,
        PolicyKind::Gdsf,
        PolicyKind::Lhd,
        PolicyKind::Arc,
        PolicyKind::LeCar,
        PolicyKind::Cacheus,
        PolicyKind::Lrb,
        PolicyKind::GlCache,
        PolicyKind::TwoQ,
        PolicyKind::TinyLfu,
        PolicyKind::AdaptSize,
        PolicyKind::Belady,
        PolicyKind::LruKScip,
        PolicyKind::LruKAscIp,
        PolicyKind::LrbScip,
        PolicyKind::LrbAscIp,
    ];

    /// The paper's eight insertion-policy baselines (Figure 8/9 order).
    pub const INSERTION_BASELINES: [PolicyKind; 8] = [
        PolicyKind::Lip,
        PolicyKind::Dip,
        PolicyKind::Pipp,
        PolicyKind::Dta,
        PolicyKind::Ship,
        PolicyKind::Dgippr,
        PolicyKind::Daaip,
        PolicyKind::AscIp,
    ];

    /// The paper's eight replacement-algorithm baselines (Figure 10/11;
    /// LRU-K, S4LRU, SS-LRU, GDSF, LHD, CACHEUS, LRB, GL-Cache).
    pub const REPLACEMENT_BASELINES: [PolicyKind; 8] = [
        PolicyKind::LruK,
        PolicyKind::S4Lru,
        PolicyKind::SsLru,
        PolicyKind::Gdsf,
        PolicyKind::Lhd,
        PolicyKind::Cacheus,
        PolicyKind::Lrb,
        PolicyKind::GlCache,
    ];

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Lip => "LIP",
            PolicyKind::Bip => "BIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Pipp => "PIPP",
            PolicyKind::Dta => "DTA",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Dgippr => "DGIPPR",
            PolicyKind::Daaip => "DAAIP",
            PolicyKind::AscIp => "ASC-IP",
            PolicyKind::Sci => "SCI",
            PolicyKind::Scip => "SCIP",
            PolicyKind::LruK => "LRU-K",
            PolicyKind::S4Lru => "S4LRU",
            PolicyKind::SsLru => "SS-LRU",
            PolicyKind::Gdsf => "GDSF",
            PolicyKind::Lhd => "LHD",
            PolicyKind::Arc => "ARC",
            PolicyKind::LeCar => "LeCaR",
            PolicyKind::Cacheus => "CACHEUS",
            PolicyKind::Lrb => "LRB",
            PolicyKind::GlCache => "GL-Cache",
            PolicyKind::TwoQ => "2Q",
            PolicyKind::TinyLfu => "TinyLFU",
            PolicyKind::AdaptSize => "AdaptSize",
            PolicyKind::Belady => "Belady",
            PolicyKind::LruKScip => "LRU-K-SCIP",
            PolicyKind::LruKAscIp => "LRU-K-ASC-IP",
            PolicyKind::LrbScip => "LRB-SCIP",
            PolicyKind::LrbAscIp => "LRB-ASC-IP",
        }
    }

    /// Stable checkpoint fingerprint of the sweep cell this kind would
    /// run: label + cache size + trace content hash + seed (see
    /// [`crate::checkpoint::job_fingerprint`]).
    pub fn fingerprint(self, cache_bytes: u64, trace_hash: u64, seed: u64) -> String {
        crate::checkpoint::job_fingerprint(self.label(), cache_bytes, trace_hash, seed)
    }

    /// Instantiate the policy at `capacity` bytes, boxed for heterogeneous
    /// collections. Hot sweep paths should prefer the monomorphized
    /// [`PolicyKind::run_monomorphized`] family instead.
    pub fn build(self, capacity: u64, ctx: &TraceCtx) -> Box<dyn CachePolicy> {
        fn boxed<P: CachePolicy + 'static>(p: P) -> Box<dyn CachePolicy> {
            Box::new(p)
        }
        dispatch_policy!(self, capacity, ctx, boxed())
    }

    /// Replay `trace` through a freshly built policy with static dispatch:
    /// one `match` per run selects the concrete type, then the whole
    /// per-request loop monomorphizes.
    pub fn run_monomorphized(
        self,
        capacity: u64,
        trace: &[Request],
        ctx: &TraceCtx,
    ) -> RunMeasurement {
        fn go<P: CachePolicy>(policy: P, label: &'static str, trace: &[Request]) -> RunMeasurement {
            instrumented_replay(policy, label, trace.len(), trace.iter().copied())
        }
        dispatch_policy!(self, capacity, ctx, go(self.label(), trace))
    }

    /// Replay `trace` with static dispatch, invoking `observe` after every
    /// request with `(index, request, outcome, used_bytes, capacity)`.
    ///
    /// This is the hook the model-check suite drives adversarial traces
    /// through: the observer can assert per-step invariants (occupancy ≤
    /// capacity, oversized ⇒ [`AccessKind::Rejected`], …) against any
    /// [`PolicyKind`] without each test reimplementing dispatch.
    pub fn run_with_observer<F>(self, capacity: u64, trace: &[Request], ctx: &TraceCtx, observe: F)
    where
        F: FnMut(usize, &Request, AccessKind, u64, u64),
    {
        fn go<P: CachePolicy, F: FnMut(usize, &Request, AccessKind, u64, u64)>(
            mut policy: P,
            trace: &[Request],
            mut observe: F,
        ) {
            for (i, req) in trace.iter().enumerate() {
                let outcome = policy.on_request(req);
                observe(i, req, outcome, policy.used_bytes(), policy.capacity());
            }
        }
        dispatch_policy!(self, capacity, ctx, go(trace, observe))
    }

    /// [`PolicyKind::run_monomorphized`] over a structure-of-arrays trace
    /// (the layout the sweep shares across workers).
    pub fn run_monomorphized_columns(
        self,
        capacity: u64,
        trace: &TraceColumns,
        ctx: &TraceCtx,
    ) -> RunMeasurement {
        fn go<P: CachePolicy>(
            policy: P,
            label: &'static str,
            trace: &TraceColumns,
        ) -> RunMeasurement {
            instrumented_replay(policy, label, trace.len(), trace.iter())
        }
        dispatch_policy!(self, capacity, ctx, go(self.label(), trace))
    }
}

/// Everything one instrumented replay measures.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Policy label.
    pub policy: String,
    /// Object miss ratio.
    pub miss_ratio: f64,
    /// Byte miss ratio.
    pub byte_miss_ratio: f64,
    /// Requests per wall-clock second (Figure 9(c)/11(c)'s TPS).
    pub tps: f64,
    /// Mean CPU time per request, nanoseconds (the peak-CPU-utilisation
    /// proxy of Figure 9(a)/11(a): relative policy compute cost).
    pub ns_per_request: f64,
    /// Peak policy-metadata bytes observed (Figure 9(b)/11(b)).
    pub peak_memory_bytes: usize,
    /// Objects resident at the end of the replay (steady-state working
    /// set). Divides into `peak_memory_bytes` for a bytes-per-resident-
    /// object density figure.
    pub resident_objects: usize,
}

/// Lookahead distance of the batched replay loop: while request `i` is
/// being processed, the index bucket for request `i + K` is prefetched via
/// [`CachePolicy::prefetch_hint`]. Set `REPLAY_PREFETCH_DIST=K` to enable;
/// the default is 0 (straight-line loop). Batching pays only when the
/// fused index outgrows the last-level cache — for working sets whose
/// index fits in L2/L3 there is no DRAM latency to hide and the ring adds
/// pure dispatch cost (measured ~20 ns/request on the 2M CDN-T trace,
/// where the 1 MiB LRU index is L2-resident).
fn replay_prefetch_distance() -> usize {
    std::env::var("REPLAY_PREFETCH_DIST")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
        .min(64)
}

/// The instrumented replay loop behind every measurement: generic over
/// the policy so concrete callers monomorphize, while `Box<dyn
/// CachePolicy>` (via [`run_policy_dyn`]) keeps the virtual-dispatch
/// reference path on the exact same loop.
///
/// With a nonzero lookahead, requests flow through a ring of `K` pending
/// slots: each incoming request issues a prefetch hint for its index
/// bucket, then waits `K` iterations before being processed, by which
/// point the bucket line is (hopefully) in L1. Ordering and outcomes are
/// identical to the straight loop — only memory-system timing changes.
fn instrumented_replay<P, I>(mut policy: P, label: &str, n: usize, requests: I) -> RunMeasurement
where
    P: CachePolicy,
    I: Iterator<Item = Request>,
{
    let mut m = cdn_cache::MissRatio::new();
    let mut peak_mem = 0usize;
    // Sample memory every ~1k requests: memory_bytes() walks structures.
    let mem_stride = (n / 512).max(1);
    let lookahead = replay_prefetch_distance();
    let start = Instant::now();
    if lookahead == 0 {
        for (i, r) in requests.enumerate() {
            if policy.on_request(&r).is_hit() {
                m.record_hit(r.size);
            } else {
                m.record_miss(r.size);
            }
            if i.is_multiple_of(mem_stride) {
                peak_mem = peak_mem.max(policy.memory_bytes());
            }
        }
    } else {
        let mut pending: std::collections::VecDeque<Request> =
            std::collections::VecDeque::with_capacity(lookahead + 1);
        let mut i = 0usize;
        let mut process = |policy: &mut P, r: Request, m: &mut cdn_cache::MissRatio| {
            if policy.on_request(&r).is_hit() {
                m.record_hit(r.size);
            } else {
                m.record_miss(r.size);
            }
            if i.is_multiple_of(mem_stride) {
                peak_mem = peak_mem.max(policy.memory_bytes());
            }
            i += 1;
        };
        for r in requests {
            policy.prefetch_hint(r.id);
            pending.push_back(r);
            if pending.len() > lookahead {
                let due = pending.pop_front().expect("ring non-empty");
                process(&mut policy, due, &mut m);
            }
        }
        while let Some(due) = pending.pop_front() {
            process(&mut policy, due, &mut m);
        }
    }
    let elapsed = start.elapsed();
    peak_mem = peak_mem.max(policy.memory_bytes());
    let secs = elapsed.as_secs_f64().max(1e-9);
    RunMeasurement {
        policy: label.to_string(),
        miss_ratio: m.miss_ratio(),
        byte_miss_ratio: m.byte_miss_ratio(),
        tps: n as f64 / secs,
        ns_per_request: elapsed.as_nanos() as f64 / n.max(1) as f64,
        peak_memory_bytes: peak_mem,
        resident_objects: policy.stats().resident_objects,
    }
}

/// Replay `trace` through a freshly built `kind`, measuring quality and
/// resource proxies. Statically dispatched (see
/// [`PolicyKind::run_monomorphized`]).
pub fn run_policy(
    kind: PolicyKind,
    capacity: u64,
    trace: &[Request],
    ctx: &TraceCtx,
) -> RunMeasurement {
    kind.run_monomorphized(capacity, trace, ctx)
}

/// [`run_policy`] forced through `Box<dyn CachePolicy>`: the per-request
/// virtual-dispatch reference the throughput harness compares the
/// monomorphized path against.
pub fn run_policy_dyn(
    kind: PolicyKind,
    capacity: u64,
    trace: &[Request],
    ctx: &TraceCtx,
) -> RunMeasurement {
    instrumented_replay(
        kind.build(capacity, ctx),
        kind.label(),
        trace.len(),
        trace.iter().copied(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    #[test]
    fn all_is_exhaustive() {
        // ALL must hold every distinct variant exactly once: labels are
        // unique per variant, so 30 distinct labels ⇒ 30 distinct kinds.
        let mut labels: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PolicyKind::ALL.len(), "duplicate in ALL");
    }

    #[test]
    fn run_with_observer_sees_every_request() {
        let reqs: Vec<(u64, u64)> = (0..500).map(|i| (i * 3 % 40, 1 + i % 9)).collect();
        let trace = micro_trace(&reqs);
        let ctx = TraceCtx::new(&trace, 3);
        let mut seen = 0usize;
        PolicyKind::Lru.run_with_observer(100, &trace, &ctx, |i, req, outcome, used, cap| {
            assert_eq!(i, seen);
            assert_eq!(req.id, trace[seen].id);
            assert!(used <= cap, "occupancy over capacity");
            assert!(outcome.is_hit() || !outcome.is_hit()); // exhaustive enum read
            seen += 1;
        });
        assert_eq!(seen, trace.len());
    }

    #[test]
    fn every_policy_builds_and_runs() {
        let reqs: Vec<(u64, u64)> = (0..3_000).map(|i| (i * 7 % 200, 1 + i % 50)).collect();
        let trace = micro_trace(&reqs);
        let ctx = TraceCtx::new(&trace, 1);
        for kind in PolicyKind::ALL {
            let r = run_policy(kind, 1_000, &trace, &ctx);
            assert!(
                (0.0..=1.0).contains(&r.miss_ratio),
                "{}: mr {}",
                r.policy,
                r.miss_ratio
            );
            assert!(r.tps > 0.0);
            assert!(r.peak_memory_bytes > 0, "{}", r.policy);
        }
    }

    #[test]
    fn mono_dyn_and_columns_agree() {
        let reqs: Vec<(u64, u64)> = (0..4_000).map(|i| (i * 17 % 250, 1 + i % 30)).collect();
        let trace = micro_trace(&reqs);
        let cols = TraceColumns::from_requests(&trace);
        let ctx = TraceCtx::new(&trace, 5);
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Dip,
            PolicyKind::TinyLfu,
            PolicyKind::Scip,
        ] {
            let mono = run_policy(kind, 900, &trace, &ctx);
            let dynamic = run_policy_dyn(kind, 900, &trace, &ctx);
            let columns = kind.run_monomorphized_columns(900, &cols, &ctx);
            for other in [&dynamic, &columns] {
                assert_eq!(mono.miss_ratio, other.miss_ratio, "{kind:?}");
                assert_eq!(mono.byte_miss_ratio, other.byte_miss_ratio, "{kind:?}");
            }
        }
    }

    #[test]
    fn belady_is_the_floor() {
        let reqs: Vec<(u64, u64)> = (0..5_000).map(|i| (i * 13 % 300, 1 + i % 20)).collect();
        let trace = micro_trace(&reqs);
        let ctx = TraceCtx::new(&trace, 2);
        let belady = run_policy(PolicyKind::Belady, 800, &trace, &ctx).miss_ratio;
        for kind in [PolicyKind::Lru, PolicyKind::Scip, PolicyKind::S4Lru] {
            let mr = run_policy(kind, 800, &trace, &ctx).miss_ratio;
            assert!(belady <= mr + 1e-9, "{kind:?}: {mr} < belady {belady}");
        }
    }
}
