//! Figure-style table formatting and TSV persistence.

use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Structured error for table construction (no panics on bad input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row's cell count disagrees with the header width.
    RaggedRow {
        /// Number of header columns.
        expected: usize,
        /// Number of cells in the offending row.
        got: usize,
        /// The table's title, for error context.
        table: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RaggedRow {
                expected,
                got,
                table,
            } => write!(
                f,
                "ragged row in table {table:?}: expected {expected} cells, got {got}"
            ),
        }
    }
}

impl std::error::Error for TableError {}

/// A simple column-aligned table with a title, printable and dumpable.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; errors (leaving the table unchanged) when the cell
    /// count does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> Result<(), TableError> {
        if cells.len() != self.header.len() {
            return Err(TableError::RaggedRow {
                expected: self.header.len(),
                got: cells.len(),
                table: self.title.clone(),
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as TSV under `results/<name>.tsv` (relative to the workspace
    /// root when run via cargo, else the current directory).
    pub fn save_tsv(&self, name: &str) -> io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.tsv"));
        let mut body = String::new();
        let _ = writeln!(body, "# {}", self.title);
        let _ = writeln!(body, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(body, "{}", row.join("\t"));
        }
        fs::write(&path, body)?;
        Ok(path)
    }
}

/// The `results/` directory (workspace-rooted when available).
pub fn results_dir() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        // crates/cdn-sim -> workspace root.
        if let Some(root) = Path::new(&manifest).parent().and_then(|p| p.parent()) {
            return root.join("results");
        }
    }
    PathBuf::from("results")
}

/// Format a ratio as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Format bytes as MB with one decimal.
pub fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["policy", "mr"]);
        t.row(vec!["LRU".into(), "0.50".into()]).unwrap();
        t.row(vec!["SCIP-long-name".into(), "0.40".into()]).unwrap();
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("SCIP-long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn ragged_rows_are_errors_not_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        let err = t.row(vec!["only-one".into()]).unwrap_err();
        assert_eq!(
            err,
            TableError::RaggedRow {
                expected: 2,
                got: 1,
                table: "demo".into()
            }
        );
        assert!(err.to_string().contains("expected 2 cells"));
        assert!(t.is_empty(), "failed row must not be stored");
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]).unwrap();
        let path = t.save_tsv("test_table_demo").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("a\tb"));
        assert!(body.contains("1\t2"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(mb(2_500_000), "2.5");
    }
}
