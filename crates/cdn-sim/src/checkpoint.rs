//! Sweep checkpoint/resume: a JSONL sidecar of completed job results.
//!
//! Long policy×size×trace grids lose hours when a run dies near the end.
//! The fix: every completed cell streams one JSON line to a sidecar file,
//! keyed by a *stable job fingerprint* — policy label, cache size, trace
//! content hash and seed ([`job_fingerprint`]). A resumed sweep loads the
//! sidecar first and re-executes only the cells that are missing, so a
//! crash (or a cell that failed after its retries) costs exactly the
//! unfinished work.
//!
//! Robustness properties:
//!
//! - Appends are line-buffered and flushed per record, so a crash loses
//!   at most the record being written.
//! - Loading skips corrupt or truncated lines (the crash case) instead of
//!   refusing the whole sidecar; skipped lines are counted.
//! - A resume that appends after a torn tail starts a fresh line first,
//!   so the fragment can never merge with (and contaminate) a new record.
//! - Fingerprints include the trace's content hash, so a sidecar from a
//!   different trace, seed or cache size can never poison a resume.
//!
//! Experiments honour the `CDN_SIM_CHECKPOINT` environment variable (a
//! sidecar path) via [`Checkpoint::from_env`]; `replaytool` and
//! `replay_bench` wire the same sidecar through their policy loops.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::runner::RunMeasurement;
use crate::sweep::{run_jobs, JobOutcome, SweepConfig, SweepReport};

/// Stable identity of one sweep cell: the policy label, its parameters,
/// and the exact input. Two runs share a fingerprint iff they would
/// compute the same measurement (modulo wall-clock noise).
pub fn job_fingerprint(policy_label: &str, cache_bytes: u64, trace_hash: u64, seed: u64) -> String {
    format!("{policy_label}|cap={cache_bytes}|trace={trace_hash:016x}|seed={seed}")
}

/// A JSONL sidecar of completed sweep cells, safe to share across worker
/// threads.
pub struct Checkpoint {
    path: PathBuf,
    done: Mutex<HashMap<String, RunMeasurement>>,
    writer: Mutex<Option<BufWriter<File>>>,
    skipped_lines: usize,
}

impl Checkpoint {
    /// Open (or create) the sidecar at `path`, loading every parseable
    /// record already in it. Corrupt lines — e.g. the torn tail of a
    /// crashed run — are skipped, not fatal.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut done = HashMap::new();
        let mut skipped = 0usize;
        match File::open(path) {
            Ok(f) => {
                for line in BufReader::new(f).lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_record(&line) {
                        Some((fp, m)) => {
                            done.insert(fp, m);
                        }
                        None => skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Checkpoint {
            path: path.to_path_buf(),
            done: Mutex::new(done),
            writer: Mutex::new(None),
            skipped_lines: skipped,
        })
    }

    /// Sidecar from the `CDN_SIM_CHECKPOINT` environment variable, if
    /// set. An unreadable sidecar is reported and ignored (the sweep then
    /// simply runs everything).
    pub fn from_env() -> Option<Self> {
        let path = std::env::var("CDN_SIM_CHECKPOINT").ok()?;
        match Self::open(Path::new(&path)) {
            Ok(c) => {
                if !c.is_empty() || c.skipped_lines > 0 {
                    eprintln!(
                        "checkpoint {path}: {} completed cells loaded{}",
                        c.len(),
                        if c.skipped_lines > 0 {
                            format!(", {} corrupt lines skipped", c.skipped_lines)
                        } else {
                            String::new()
                        }
                    );
                }
                Some(c)
            }
            Err(e) => {
                eprintln!("checkpoint {path}: unreadable ({e}); starting fresh");
                None
            }
        }
    }

    /// Sidecar path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed cells currently known.
    pub fn len(&self) -> usize {
        self.done.lock().unwrap().len()
    }

    /// True when no completed cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines the loader had to skip as corrupt.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// The stored measurement for `fingerprint`, if that cell already
    /// completed in a previous (or this) run.
    pub fn get(&self, fingerprint: &str) -> Option<RunMeasurement> {
        self.done.lock().unwrap().get(fingerprint).cloned()
    }

    /// Record a completed cell: append one JSONL line (flushed
    /// immediately) and remember it in memory. Append failures are
    /// reported to stderr but never fail the sweep — a broken sidecar
    /// must not cost the computed result.
    ///
    /// Crash-safety contract: each record is written and flushed as one
    /// `\n`-terminated line, so a crash tears at most the line being
    /// appended. If the sidecar's tail is such a torn line (no trailing
    /// newline), the first append of the next run starts a fresh line
    /// rather than extending the fragment — otherwise the fragment and
    /// the new record would merge into one line whose first-occurrence
    /// field parsing could resurrect stale values from the fragment.
    pub fn record(&self, fingerprint: &str, m: &RunMeasurement) {
        self.done
            .lock()
            .unwrap()
            .insert(fingerprint.to_string(), m.clone());
        let mut guard = self.writer.lock().unwrap();
        if guard.is_none() {
            let torn_tail = std::fs::read(&self.path)
                .map(|b| !b.is_empty() && b.last() != Some(&b'\n'))
                .unwrap_or(false);
            match OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
            {
                Ok(f) => {
                    let mut w = BufWriter::new(f);
                    if torn_tail {
                        // Quarantine the fragment on its own line; the
                        // loader will skip it as corrupt.
                        let _ = writeln!(w);
                    }
                    *guard = Some(w);
                }
                Err(e) => {
                    eprintln!("checkpoint {}: cannot append ({e})", self.path.display());
                    return;
                }
            }
        }
        if let Some(w) = guard.as_mut() {
            let line = encode_record(fingerprint, m);
            if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
                eprintln!("checkpoint {}: write failed", self.path.display());
            }
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn encode_record(fingerprint: &str, m: &RunMeasurement) -> String {
    format!(
        "{{\"fp\":\"{}\",\"policy\":\"{}\",\"miss_ratio\":{},\"byte_miss_ratio\":{},\
         \"tps\":{},\"ns_per_request\":{},\"peak_memory_bytes\":{},\"resident_objects\":{},\
         \"hits\":{},\"misses\":{},\"hit_bytes\":{},\"miss_bytes\":{}}}",
        json_escape(fingerprint),
        json_escape(&m.policy),
        m.miss_ratio,
        m.byte_miss_ratio,
        m.tps,
        m.ns_per_request,
        m.peak_memory_bytes,
        m.resident_objects,
        m.hits,
        m.misses,
        m.hit_bytes,
        m.miss_bytes
    )
}

/// Extract the string value of `"key":"..."` from a flat JSON object
/// line (handles `\\` and `\"` escapes — all our writer emits).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                let next = *bytes.get(i + 1)?;
                out.push(next as char);
                i += 2;
            }
            b'"' => return Some(out),
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    None
}

/// Extract the numeric value of `"key":123.45` from a flat JSON line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_record(line: &str) -> Option<(String, RunMeasurement)> {
    if !line.ends_with('}') {
        return None; // torn tail of a crashed append
    }
    let fp = json_str_field(line, "fp")?;
    let m = RunMeasurement {
        policy: json_str_field(line, "policy")?,
        miss_ratio: json_num_field(line, "miss_ratio")?,
        byte_miss_ratio: json_num_field(line, "byte_miss_ratio")?,
        tps: json_num_field(line, "tps")?,
        ns_per_request: json_num_field(line, "ns_per_request")?,
        peak_memory_bytes: json_num_field(line, "peak_memory_bytes")? as usize,
        // Absent in sidecars written before the field existed; 0 keeps
        // those cells loadable (a missing density is better than a
        // discarded measurement).
        resident_objects: json_num_field(line, "resident_objects").unwrap_or(0.0) as usize,
        // Ledger counters: also absent in pre-v3 sidecars. Restored cells
        // with zero ledgers are fine for the bench (which reports ratios)
        // but are never used as a sharded-equality reference.
        hits: json_num_field(line, "hits").unwrap_or(0.0) as u64,
        misses: json_num_field(line, "misses").unwrap_or(0.0) as u64,
        hit_bytes: json_num_field(line, "hit_bytes").unwrap_or(0.0) as u64,
        miss_bytes: json_num_field(line, "miss_bytes").unwrap_or(0.0) as u64,
    };
    Some((fp, m))
}

/// Run a grid of fingerprinted measurement jobs with panic isolation,
/// bounded retry, and (optionally) checkpoint skip/record:
///
/// - cells whose fingerprint is already in `checkpoint` are restored as
///   [`JobOutcome::Cached`] without running;
/// - every freshly computed result streams to the sidecar before the
///   sweep moves on, so a later crash resumes past it.
///
/// Outcomes come back in input order.
pub fn run_checkpointed<F>(
    cells: Vec<(String, F)>,
    checkpoint: Option<&Checkpoint>,
    cfg: &SweepConfig,
) -> SweepReport<RunMeasurement>
where
    F: FnMut() -> RunMeasurement + Send,
{
    let total = cells.len();
    let mut outcomes: Vec<Option<JobOutcome<RunMeasurement>>> = Vec::with_capacity(total);
    let mut pending: Vec<(usize, String, F)> = Vec::new();
    for (idx, (fp, job)) in cells.into_iter().enumerate() {
        match checkpoint.and_then(|c| c.get(&fp)) {
            Some(m) => outcomes.push(Some(JobOutcome::Cached(m))),
            None => {
                outcomes.push(None);
                pending.push((idx, fp, job));
            }
        }
    }
    let jobs: Vec<_> = pending
        .into_iter()
        .map(|(idx, fp, mut job)| {
            let wrapped = move || {
                let m = job();
                if let Some(c) = checkpoint {
                    c.record(&fp, &m);
                }
                m
            };
            (idx, wrapped)
        })
        .collect();
    let indices: Vec<usize> = jobs.iter().map(|(i, _)| *i).collect();
    let report = run_jobs(jobs.into_iter().map(|(_, j)| j).collect(), cfg);
    for (slot, outcome) in indices.into_iter().zip(report.outcomes) {
        outcomes[slot] = Some(outcome);
    }
    SweepReport {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every cell accounted for"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(policy: &str, mr: f64) -> RunMeasurement {
        RunMeasurement {
            policy: policy.to_string(),
            miss_ratio: mr,
            byte_miss_ratio: mr * 0.5,
            tps: 1e6,
            ns_per_request: 100.0,
            peak_memory_bytes: 4096,
            resident_objects: 16,
            hits: 300,
            misses: 100,
            hit_bytes: 3_000,
            miss_bytes: 1_000,
        }
    }

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdn_sim_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_cells() {
        let a = job_fingerprint("SCIP", 1 << 30, 0xDEAD_BEEF, 42);
        assert_eq!(a, job_fingerprint("SCIP", 1 << 30, 0xDEAD_BEEF, 42));
        for other in [
            job_fingerprint("LRU", 1 << 30, 0xDEAD_BEEF, 42),
            job_fingerprint("SCIP", 1 << 20, 0xDEAD_BEEF, 42),
            job_fingerprint("SCIP", 1 << 30, 0xBEEF_DEAD, 42),
            job_fingerprint("SCIP", 1 << 30, 0xDEAD_BEEF, 7),
        ] {
            assert_ne!(a, other);
        }
    }

    #[test]
    fn record_roundtrips_through_file() {
        let path = tmpfile("roundtrip.jsonl");
        std::fs::remove_file(&path).ok();
        let ckpt = Checkpoint::open(&path).unwrap();
        let fp = job_fingerprint("SCIP", 123, 456, 7);
        ckpt.record(&fp, &m("SCIP", 0.25));
        drop(ckpt);
        let back = Checkpoint::open(&path).unwrap();
        assert_eq!(back.len(), 1);
        let got = back.get(&fp).unwrap();
        assert_eq!(got.policy, "SCIP");
        assert_eq!(got.miss_ratio, 0.25);
        assert_eq!(got.byte_miss_ratio, 0.125);
        assert_eq!(got.peak_memory_bytes, 4096);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_and_corrupt_lines_are_skipped_not_fatal() {
        let path = tmpfile("torn.jsonl");
        let good = encode_record("A|cap=1|trace=2|seed=3", &m("A", 0.5));
        let torn = &good[..good.len() / 2]; // crashed mid-append
        std::fs::write(&path, format!("{good}\nnot json at all\n{torn}")).unwrap();
        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.len(), 1);
        assert_eq!(ckpt.skipped_lines(), 2);
        assert!(ckpt.get("A|cap=1|trace=2|seed=3").is_some());
        std::fs::remove_file(&path).ok();
    }

    /// The crash-safety contract end to end: a sidecar whose last line
    /// was torn mid-append (the crash case — appends flush per line, so
    /// only the in-flight record can be damaged) resumes cleanly. The
    /// torn cell is recomputed and re-appended; intact cells stay
    /// cached; a third run caches everything.
    #[test]
    fn truncated_mid_line_resume_recomputes_only_the_torn_cell() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let path = tmpfile("truncate_resume.jsonl");
        std::fs::remove_file(&path).ok();

        let fps: Vec<String> = (0..3)
            .map(|i| job_fingerprint("SCIP", i, 0xCD, 9))
            .collect();
        {
            let ckpt = Checkpoint::open(&path).unwrap();
            for (i, fp) in fps.iter().enumerate() {
                ckpt.record(fp, &m("SCIP", i as f64 / 10.0));
            }
        }
        // Crash: the final append is torn partway through the line.
        let bytes = std::fs::read(&path).unwrap();
        let torn_at = bytes.len() - 17;
        std::fs::write(&path, &bytes[..torn_at]).unwrap();

        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.len(), 2, "two intact records survive");
        assert_eq!(ckpt.skipped_lines(), 1, "the torn tail is skipped");

        let ran = AtomicUsize::new(0);
        let cells: Vec<(String, _)> = fps
            .iter()
            .enumerate()
            .map(|(i, fp)| {
                let ran = &ran;
                (fp.clone(), move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    m("SCIP", i as f64 / 10.0)
                })
            })
            .collect();
        let report = run_checkpointed(cells, Some(&ckpt), &SweepConfig::default());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "only the torn cell re-runs");
        assert_eq!(report.cached(), 2);
        assert!(report.failures().is_empty());

        // The recomputed record was re-appended on a fresh line (the
        // torn fragment stays quarantined on its own): a fresh open
        // caches all three, and nothing executes.
        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.len(), 3);
        assert_eq!(ckpt.skipped_lines(), 1, "torn fragment still skipped");
        let cells: Vec<(String, _)> = fps
            .iter()
            .map(|fp| {
                (fp.clone(), move || -> RunMeasurement {
                    panic!("must not run")
                })
            })
            .collect();
        let report = run_checkpointed(cells, Some(&ckpt), &SweepConfig::default());
        assert_eq!(report.cached(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_sidecar_is_empty_not_error() {
        let path = tmpfile("never_written.jsonl");
        std::fs::remove_file(&path).ok();
        let ckpt = Checkpoint::open(&path).unwrap();
        assert!(ckpt.is_empty());
    }

    #[test]
    fn run_checkpointed_skips_done_cells_and_records_new_ones() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let path = tmpfile("resume.jsonl");
        std::fs::remove_file(&path).ok();

        let fps: Vec<String> = (0..4).map(|i| job_fingerprint("LRU", i, 0xAB, 1)).collect();
        // First run completes cells 0 and 2.
        {
            let ckpt = Checkpoint::open(&path).unwrap();
            ckpt.record(&fps[0], &m("LRU", 0.0));
            ckpt.record(&fps[2], &m("LRU", 0.2));
        }
        // Resume: only cells 1 and 3 may execute.
        let ckpt = Checkpoint::open(&path).unwrap();
        let ran = AtomicUsize::new(0);
        let cells: Vec<(String, _)> = fps
            .iter()
            .enumerate()
            .map(|(i, fp)| {
                let ran = &ran;
                (fp.clone(), move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    m("LRU", i as f64 / 10.0)
                })
            })
            .collect();
        let report = run_checkpointed(cells, Some(&ckpt), &SweepConfig::default());
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        assert_eq!(report.cached(), 2);
        assert!(report.failures().is_empty());
        for (i, o) in report.outcomes.iter().enumerate() {
            let v = o.value().unwrap();
            assert!((v.miss_ratio - i as f64 / 10.0).abs() < 1e-12, "cell {i}");
            assert!(matches!(o, JobOutcome::Cached(_)) == (i == 0 || i == 2));
        }
        // Second resume: everything cached, nothing executes.
        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.len(), 4);
        let cells: Vec<(String, _)> = fps
            .iter()
            .map(|fp| {
                (fp.clone(), move || -> RunMeasurement {
                    panic!("must not run")
                })
            })
            .collect();
        let report = run_checkpointed(cells, Some(&ckpt), &SweepConfig::default());
        assert_eq!(report.cached(), 4);
        std::fs::remove_file(&path).ok();
    }
}
