//! Out-of-core replay seam: one entry point over an in-RAM trace or a
//! disk-backed chunk stream.
//!
//! [`TraceSource`] is the seam the binaries and drills program against:
//! `Columns` replays zero-copy through the batched in-RAM hot loop,
//! `Stream` replays through the chunked variant of the *same*
//! monomorphized loop fed by `cdn-trace`'s double-buffered prefetch
//! thread. Ledgers are u64-identical either way (pinned for every
//! [`PolicyKind`] in `tests/stream_identity.rs`), so callers choose by
//! memory budget, not by semantics: the streamed side's peak RSS is
//! bounded by chunk buffers plus policy state, independent of trace
//! length.
//!
//! [`sweep_streamed`] extends the checkpoint/resume machinery to
//! out-of-core sweeps: each cell opens its own [`StreamingTrace`] (jobs
//! are retry-safe and share no reader state), and fingerprints are keyed
//! by [`file_content_hash`] — which equals the in-RAM
//! [`TraceColumns::content_hash`] of the same records, so sidecars
//! written by in-RAM sweeps of the same trace remain valid and vice
//! versa.

use std::path::Path;

use cdn_trace::{file_content_hash, ChunkIter, StreamingTrace, TraceColumns, TraceError};

use crate::checkpoint::{run_checkpointed, Checkpoint};
use crate::runner::{BatchMode, PolicyKind, RunMeasurement, TraceCtx};
use crate::sweep::{SweepConfig, SweepReport};

/// Where a replay's requests come from: RAM or a bounded-memory stream.
pub enum TraceSource<'a> {
    /// Whole trace resident in RAM (structure-of-arrays, zero-copy).
    Columns(&'a TraceColumns),
    /// Double-buffered chunk stream off disk; only
    /// [`cdn_trace::STREAM_SLOTS`]` + 1` chunks exist at once.
    Stream(StreamingTrace),
}

impl TraceSource<'static> {
    /// Open `path` as a streaming source (format v1 or v2), honouring
    /// `REPLAY_STREAM_CHUNK` for the coalesced chunk size.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Ok(TraceSource::Stream(StreamingTrace::open(path)?))
    }
}

impl TraceSource<'_> {
    /// Requests this source claims to hold: exact for `Columns`, the
    /// (untrusted, advisory) header count for `Stream`.
    pub fn requests_hint(&self) -> u64 {
        match self {
            TraceSource::Columns(c) => c.len() as u64,
            TraceSource::Stream(s) => s.header_count() as u64,
        }
    }

    /// Replay this source through a freshly built `kind`. The in-RAM arm
    /// is exactly [`PolicyKind::replay_batched`]; the streamed arm is
    /// [`PolicyKind::replay_stream`] and surfaces the first
    /// [`TraceError`] (corruption, truncation, I/O, prefetch-thread
    /// death) instead of returning a partial measurement.
    pub fn replay(
        self,
        kind: PolicyKind,
        capacity: u64,
        ctx: &TraceCtx,
        mode: BatchMode,
    ) -> Result<RunMeasurement, TraceError> {
        match self {
            TraceSource::Columns(cols) => Ok(kind.replay_batched(capacity, cols, ctx, mode)),
            TraceSource::Stream(stream) => kind.replay_stream(capacity, stream, ctx, mode),
        }
    }
}

/// Checkpointable sweep over an on-disk trace that never loads it whole:
/// every `(policy, cache_bytes)` cell opens its own [`StreamingTrace`]
/// over `path` and replays it out-of-core, with panic isolation and
/// bounded retry from the regular sweep executor. Peak RSS is bounded by
/// `workers × (chunk buffers + policy state)`, independent of trace
/// length.
///
/// Cell fingerprints are `label|cap|file_content_hash|seed` — identical
/// to the fingerprints an in-RAM sweep of the same records computes, so
/// a sidecar survives switching a sweep between in-RAM and streamed
/// execution. The hash pass and the per-cell replays each stream the
/// file separately; a cell whose stream errors mid-replay panics inside
/// the isolation boundary and surfaces as a `Panicked` outcome naming
/// the [`TraceError`] (suppressed, never fabricated).
///
/// # Panics
/// If `cells` contains [`PolicyKind::Belady`]: the MIN oracle needs the
/// whole trace in RAM to index its next-access table, which is exactly
/// what an out-of-core sweep does not have.
pub fn sweep_streamed(
    path: &Path,
    cells: &[(PolicyKind, u64)],
    seed: u64,
    mode: BatchMode,
    checkpoint: Option<&Checkpoint>,
    cfg: &SweepConfig,
) -> Result<SweepReport<RunMeasurement>, TraceError> {
    assert!(
        cells.iter().all(|(k, _)| *k != PolicyKind::Belady),
        "sweep_streamed: Belady needs the trace in RAM (next-access oracle)"
    );
    let trace_hash = file_content_hash(path)?;
    let header_count = ChunkIter::open(path)?.header_count() as u64;
    let jobs: Vec<(String, _)> = cells
        .iter()
        .map(|&(kind, cache_bytes)| {
            let fp = kind.fingerprint(cache_bytes, trace_hash, seed);
            let job = move || {
                let ctx = TraceCtx::without_oracle(header_count, seed);
                let stream = StreamingTrace::open(path)
                    .unwrap_or_else(|e| panic!("streamed sweep cell {kind:?}: {e}"));
                kind.replay_stream(cache_bytes, stream, &ctx, mode)
                    .unwrap_or_else(|e| panic!("streamed sweep cell {kind:?}: {e}"))
            };
            (fp, job)
        })
        .collect();
    Ok(run_checkpointed(jobs, checkpoint, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::io::write_binary;
    use cdn_trace::{GeneratorConfig, TraceGenerator};
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdn_sim_stream_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_trace() -> Vec<cdn_cache::Request> {
        TraceGenerator::generate(GeneratorConfig {
            requests: 30_000,
            core_objects: 2_000,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn seam_arms_produce_identical_ledgers() {
        let trace = sample_trace();
        let cols = TraceColumns::from_requests(&trace);
        let path = tmpfile("seam.bin");
        write_binary(&path, &trace).unwrap();
        let ctx = TraceCtx::new(&trace, 7);
        for kind in [PolicyKind::Lru, PolicyKind::Scip, PolicyKind::TinyLfu] {
            let in_ram = TraceSource::Columns(&cols)
                .replay(kind, 50_000, &ctx, BatchMode::Off)
                .unwrap();
            let streamed = TraceSource::open(&path)
                .unwrap()
                .replay(kind, 50_000, &ctx, BatchMode::Off)
                .unwrap();
            assert_eq!(
                (
                    in_ram.hits,
                    in_ram.misses,
                    in_ram.hit_bytes,
                    in_ram.miss_bytes
                ),
                (
                    streamed.hits,
                    streamed.misses,
                    streamed.hit_bytes,
                    streamed.miss_bytes
                ),
                "{kind:?}"
            );
            assert_eq!(
                in_ram.resident_objects, streamed.resident_objects,
                "{kind:?}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn requests_hint_matches_header() {
        let trace = sample_trace();
        let path = tmpfile("hint.bin");
        write_binary(&path, &trace).unwrap();
        let src = TraceSource::open(&path).unwrap();
        assert_eq!(src.requests_hint(), trace.len() as u64);
        let cols = TraceColumns::from_requests(&trace);
        assert_eq!(
            TraceSource::Columns(&cols).requests_hint(),
            trace.len() as u64
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_streamed_checkpoints_with_in_ram_compatible_fingerprints() {
        let trace = sample_trace();
        let cols = TraceColumns::from_requests(&trace);
        let path = tmpfile("sweep.bin");
        write_binary(&path, &trace).unwrap();
        let sidecar = tmpfile("sweep.jsonl");
        std::fs::remove_file(&sidecar).ok();

        let cells = [(PolicyKind::Lru, 50_000u64), (PolicyKind::Scip, 50_000u64)];
        let ckpt = Checkpoint::open(&sidecar).unwrap();
        let report = sweep_streamed(
            &path,
            &cells,
            7,
            BatchMode::Off,
            Some(&ckpt),
            &SweepConfig::default(),
        )
        .unwrap();
        assert!(report.failures().is_empty());
        assert_eq!(report.cached(), 0);

        // The sidecar key is the same fingerprint an in-RAM sweep
        // computes: label|cap|content_hash|seed.
        let in_ram_fp = PolicyKind::Lru.fingerprint(50_000, cols.content_hash(), 7);
        let ckpt = Checkpoint::open(&sidecar).unwrap();
        assert!(
            ckpt.get(&in_ram_fp).is_some(),
            "streamed sidecar must be keyed by the trace content hash"
        );

        // Resume: everything restored, nothing re-runs (and restored
        // ledgers match a fresh in-RAM replay).
        let report = sweep_streamed(
            &path,
            &cells,
            7,
            BatchMode::Off,
            Some(&ckpt),
            &SweepConfig::default(),
        )
        .unwrap();
        assert_eq!(report.cached(), cells.len());
        let ctx = TraceCtx::new(&trace, 7);
        let fresh = PolicyKind::Lru.replay_batched(50_000, &cols, &ctx, BatchMode::Off);
        let cached = report.outcomes[0].value().unwrap();
        assert_eq!((cached.hits, cached.misses), (fresh.hits, fresh.misses));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
    }

    #[test]
    #[should_panic(expected = "Belady")]
    fn sweep_streamed_rejects_belady() {
        let path = tmpfile("belady.bin");
        write_binary(&path, &sample_trace()).unwrap();
        let _ = sweep_streamed(
            &path,
            &[(PolicyKind::Belady, 1_000)],
            7,
            BatchMode::Off,
            None,
            &SweepConfig::default(),
        );
    }
}
