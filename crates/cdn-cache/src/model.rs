//! Deliberately naive reference implementations for differential testing.
//!
//! Each `Model*` structure mirrors the public semantics of a real substrate
//! structure ([`crate::LruQueue`], [`crate::GhostList`],
//! [`crate::SegmentedQueue`]) using the most obviously-correct encoding
//! available: a plain `Vec` ordered MRU→first, linear scans for every
//! lookup, and a size ledger recomputed with u128 arithmetic so the model
//! itself can never overflow. None of this is fast — O(n) per operation —
//! and that is the point: the model is small enough to review by eye, and
//! `cdn-sim/tests/model_check.rs` drives it in lockstep with the real
//! structures over long seeded operation sequences, asserting identical
//! observable behavior at every step.
//!
//! [`ModelLruPolicy`] additionally lifts the model queue into a full
//! [`CachePolicy`] implementing the workspace-wide oversized-object
//! contract (`Rejected(TooLarge)` for `size > capacity`, state untouched),
//! so the policy-level differential can compare the real LRU/LIP policies
//! outcome-for-outcome.

use crate::ghost::GhostEntry;
use crate::object::{ObjectId, Request, Tick};
use crate::policy::{AccessKind, CachePolicy, InsertPos, PolicyStats, RejectReason};
use crate::queue::{EntryMeta, EvictedEntry};

fn meta(id: ObjectId, size: u64, tick: Tick, at_mru: bool) -> EntryMeta {
    EntryMeta {
        id,
        size,
        inserted_at_mru: at_mru,
        inserted_tick: tick,
        last_access: tick,
        hits: 0,
        tag: 0,
    }
}

/// Reference LRU queue: `Vec` of entries, index 0 = MRU, last = LRU.
#[derive(Debug, Clone)]
pub struct ModelLru {
    entries: Vec<EntryMeta>,
    capacity: u64,
}

impl ModelLru {
    /// Queue with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        ModelLru {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident (recomputed by scan, in u128).
    pub fn used_bytes(&self) -> u64 {
        let sum: u128 = self.entries.iter().map(|e| e.size as u128).sum();
        u64::try_from(sum).expect("model never admits past capacity")
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Linear-scan residency test.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Shared access to a resident entry.
    pub fn get(&self, id: ObjectId) -> Option<&EntryMeta> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Mutable access to a resident entry.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut EntryMeta> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Whether inserting `size` bytes would require evictions (u128 math).
    pub fn needs_eviction_for(&self, size: u64) -> bool {
        self.used_bytes() as u128 + size as u128 > self.capacity as u128
    }

    /// Whether an object of `size` bytes can ever fit.
    pub fn admissible(&self, size: u64) -> bool {
        size <= self.capacity
    }

    /// Insert at the MRU position (callers evict first, as with the real
    /// queue).
    pub fn insert_mru(&mut self, id: ObjectId, size: u64, tick: Tick) {
        debug_assert!(!self.contains(id));
        self.entries.insert(0, meta(id, size, tick, true));
    }

    /// Insert at the LRU position.
    pub fn insert_lru(&mut self, id: ObjectId, size: u64, tick: Tick) {
        debug_assert!(!self.contains(id));
        self.entries.push(meta(id, size, tick, false));
    }

    /// Re-insert preserved metadata at the MRU position.
    pub fn insert_meta_mru(&mut self, m: EntryMeta) {
        debug_assert!(!self.contains(m.id));
        self.entries.insert(0, m);
    }

    /// Re-insert preserved metadata at the LRU position.
    pub fn insert_meta_lru(&mut self, m: EntryMeta) {
        debug_assert!(!self.contains(m.id));
        self.entries.push(m);
    }

    /// Bump hit statistics without moving the entry.
    pub fn record_hit(&mut self, id: ObjectId, tick: Tick) {
        if let Some(e) = self.get_mut(id) {
            e.hits += 1;
            e.last_access = tick;
        }
    }

    /// Move a resident entry to index 0.
    pub fn promote_to_mru(&mut self, id: ObjectId) {
        if let Some(i) = self.entries.iter().position(|e| e.id == id) {
            let e = self.entries.remove(i);
            self.entries.insert(0, e);
        }
    }

    /// Move a resident entry to the last index.
    pub fn demote_to_lru(&mut self, id: ObjectId) {
        if let Some(i) = self.entries.iter().position(|e| e.id == id) {
            let e = self.entries.remove(i);
            self.entries.push(e);
        }
    }

    /// Swap a resident entry one slot toward MRU.
    pub fn promote_one(&mut self, id: ObjectId) {
        if let Some(i) = self.entries.iter().position(|e| e.id == id) {
            if i > 0 {
                self.entries.swap(i, i - 1);
            }
        }
    }

    /// Remove a resident entry.
    pub fn remove(&mut self, id: ObjectId) -> Option<EntryMeta> {
        let i = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(i))
    }

    /// Evict the LRU-end entry.
    pub fn evict_lru(&mut self) -> Option<EvictedEntry> {
        self.entries.pop()
    }

    /// Peek the LRU-end entry.
    pub fn peek_lru(&self) -> Option<&EntryMeta> {
        self.entries.last()
    }

    /// Peek the MRU-end entry.
    pub fn peek_mru(&self) -> Option<&EntryMeta> {
        self.entries.first()
    }

    /// Resize, evicting from the LRU end until the queue fits (victims
    /// oldest-first) — mirrors [`crate::LruQueue::set_capacity`].
    pub fn set_capacity(&mut self, capacity: u64) -> Vec<EvictedEntry> {
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.used_bytes() > self.capacity {
            match self.evict_lru() {
                Some(v) => evicted.push(v),
                None => break,
            }
        }
        evicted
    }

    /// Iterate MRU→LRU.
    pub fn iter(&self) -> impl Iterator<Item = &EntryMeta> {
        self.entries.iter()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Reference ghost list: `Vec` of entries, index 0 = newest.
#[derive(Debug, Clone)]
pub struct ModelGhost {
    entries: Vec<GhostEntry>,
    capacity_bytes: u64,
}

impl ModelGhost {
    /// Ghost list with the given byte budget.
    pub fn new(capacity_bytes: u64) -> Self {
        ModelGhost {
            entries: Vec::new(),
            capacity_bytes,
        }
    }

    /// Byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes of tracked object sizes (recomputed by scan, in u128).
    pub fn used_bytes(&self) -> u64 {
        let sum: u128 = self.entries.iter().map(|e| e.size as u128).sum();
        u64::try_from(sum).expect("model never tracks past budget")
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Linear-scan membership test.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Shared access to a tracked entry.
    pub fn get(&self, id: ObjectId) -> Option<&GhostEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// The paper's `ADD`, with [`crate::GhostList::add`]'s exact semantics:
    /// oversized entries are not tracked (and forget any stale record),
    /// re-adds refresh to the head, overflow drops oldest-first.
    pub fn add(&mut self, entry: GhostEntry) {
        if entry.size > self.capacity_bytes {
            self.delete(entry.id);
            return;
        }
        self.delete(entry.id);
        self.entries.insert(0, entry);
        while self.used_bytes() > self.capacity_bytes {
            let victim = self.entries.pop().expect("over budget implies nonempty");
            debug_assert_ne!(victim.id, entry.id, "new head entry always fits");
        }
    }

    /// The paper's `DELETE`.
    pub fn delete(&mut self, id: ObjectId) -> Option<GhostEntry> {
        let i = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.remove(i))
    }

    /// Iterate newest→oldest.
    pub fn iter(&self) -> impl Iterator<Item = &GhostEntry> {
        self.entries.iter()
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Reference segmented queue: `Vec` of model segments, same cascade rules
/// as [`crate::SegmentedQueue`]. Index 0 = eviction end; within a segment,
/// index 0 = MRU.
#[derive(Debug, Clone)]
pub struct ModelSegQ {
    segments: Vec<Vec<EntryMeta>>,
    budgets: Vec<u64>,
    total_capacity: u64,
}

impl ModelSegQ {
    /// Build with the same fraction→budget rounding as the real queue.
    pub fn new(total_capacity: u64, fractions: &[f64]) -> Self {
        assert!(!fractions.is_empty(), "need at least one segment");
        let mut budgets: Vec<u64> = fractions
            .iter()
            .map(|&f| {
                assert!(f > 0.0, "segment fraction must be positive");
                (total_capacity as f64 * f) as u64
            })
            .collect();
        let last = budgets.len() - 1;
        let sum_head: u64 = budgets[..last].iter().sum();
        budgets[last] = total_capacity.saturating_sub(sum_head).max(1);
        ModelSegQ {
            segments: fractions.iter().map(|_| Vec::new()).collect(),
            budgets,
            total_capacity,
        }
    }

    /// Equal-share segmentation.
    pub fn equal(total_capacity: u64, n_segments: usize) -> Self {
        let frac = vec![1.0 / n_segments as f64; n_segments];
        Self::new(total_capacity, &frac)
    }

    /// Total byte capacity.
    pub fn capacity(&self) -> u64 {
        self.total_capacity
    }

    /// Bytes resident across all segments (u128 scan).
    pub fn used_bytes(&self) -> u64 {
        let sum: u128 = self
            .segments
            .iter()
            .flat_map(|s| s.iter())
            .map(|e| e.size as u128)
            .sum();
        u64::try_from(sum).unwrap_or(u64::MAX)
    }

    /// Objects resident across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear-scan residency test.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.segment_of(id).is_some()
    }

    /// Segment currently holding `id`.
    pub fn segment_of(&self, id: ObjectId) -> Option<usize> {
        self.segments
            .iter()
            .position(|s| s.iter().any(|e| e.id == id))
    }

    /// Entry metadata of a resident object.
    pub fn get(&self, id: ObjectId) -> Option<&EntryMeta> {
        self.segments
            .iter()
            .flat_map(|s| s.iter())
            .find(|e| e.id == id)
    }

    fn seg_used(&self, i: usize) -> u128 {
        self.segments[i].iter().map(|e| e.size as u128).sum()
    }

    fn rebalance(&mut self, from: usize, evicted: &mut Vec<EvictedEntry>) {
        for i in (0..=from).rev() {
            while self.seg_used(i) > self.budgets[i] as u128 {
                let victim = self.segments[i].pop().expect("overfull segment nonempty");
                if i == 0 {
                    evicted.push(victim);
                } else {
                    self.segments[i - 1].insert(0, victim);
                }
            }
        }
    }

    /// Insert a new object at the MRU position of segment `seg`.
    pub fn insert(&mut self, seg: usize, id: ObjectId, size: u64, tick: Tick) -> Vec<EvictedEntry> {
        assert!(seg < self.segments.len());
        debug_assert!(!self.contains(id));
        self.segments[seg].insert(0, meta(id, size, tick, true));
        let mut evicted = Vec::new();
        self.rebalance(self.segments.len() - 1, &mut evicted);
        evicted
    }

    /// Record a hit and move to the MRU position of `target_seg`.
    pub fn hit_move_to(
        &mut self,
        id: ObjectId,
        target_seg: usize,
        tick: Tick,
    ) -> Vec<EvictedEntry> {
        assert!(target_seg < self.segments.len());
        let cur = self.segment_of(id).expect("hit on non-resident object");
        let i = self.segments[cur]
            .iter()
            .position(|e| e.id == id)
            .expect("resident");
        let mut m = self.segments[cur].remove(i);
        m.hits += 1;
        m.last_access = tick;
        m.inserted_at_mru = true;
        self.segments[target_seg].insert(0, m);
        let mut evicted = Vec::new();
        self.rebalance(self.segments.len() - 1, &mut evicted);
        evicted
    }

    /// Move one position toward the global MRU end (crossing a boundary
    /// enters the LRU position of the segment above; never rebalances).
    pub fn promote_one_global(&mut self, id: ObjectId) {
        let Some(seg) = self.segment_of(id) else {
            return;
        };
        let i = self.segments[seg]
            .iter()
            .position(|e| e.id == id)
            .expect("resident");
        if i == 0 {
            if seg + 1 < self.segments.len() {
                let m = self.segments[seg].remove(0);
                self.segments[seg + 1].push(m);
            }
        } else {
            self.segments[seg].swap(i, i - 1);
        }
    }

    /// Remove without recording an eviction.
    pub fn remove(&mut self, id: ObjectId) -> Option<EntryMeta> {
        let seg = self.segment_of(id)?;
        let i = self.segments[seg].iter().position(|e| e.id == id)?;
        Some(self.segments[seg].remove(i))
    }

    /// Evict the globally least-recent entry.
    pub fn evict_global(&mut self) -> Option<EvictedEntry> {
        self.segments.iter_mut().find(|s| !s.is_empty())?.pop()
    }

    /// Iterate all entries in global recency order (most protected first).
    pub fn iter_global(&self) -> impl Iterator<Item = &EntryMeta> {
        self.segments.iter().rev().flat_map(|s| s.iter())
    }
}

/// Reference LRU/LIP policy over [`ModelLru`], implementing the
/// workspace-wide oversized-object contract. Mirrors the semantics of
/// `InsertionCache<Mip>` / `InsertionCache<Lip>`: hit promotes to MRU,
/// miss inserts at `insert_pos`, `size > capacity` is rejected untouched.
#[derive(Debug, Clone)]
pub struct ModelLruPolicy {
    cache: ModelLru,
    insert_pos: InsertPos,
    name: &'static str,
    stats: PolicyStats,
}

impl ModelLruPolicy {
    /// Reference policy with the given capacity and insertion end.
    pub fn new(capacity: u64, insert_pos: InsertPos) -> Self {
        ModelLruPolicy {
            cache: ModelLru::new(capacity),
            insert_pos,
            name: match insert_pos {
                InsertPos::Mru => "ModelLRU",
                InsertPos::Lru => "ModelLIP",
            },
            stats: PolicyStats::default(),
        }
    }

    /// The underlying model queue (for order comparisons).
    pub fn queue(&self) -> &ModelLru {
        &self.cache
    }
}

impl CachePolicy for ModelLruPolicy {
    fn name(&self) -> &str {
        self.name
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        if self.cache.contains(req.id) {
            self.cache.record_hit(req.id, req.tick);
            self.cache.promote_to_mru(req.id);
            return AccessKind::Hit;
        }
        if !self.cache.admissible(req.size) {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        while self.cache.needs_eviction_for(req.size) {
            self.cache.evict_lru().expect("nonempty");
            self.stats.evictions += 1;
        }
        match self.insert_pos {
            InsertPos::Mru => self.cache.insert_mru(req.id, req.size, req.tick),
            InsertPos::Lru => self.cache.insert_lru(req.id, req.size, req.tick),
        }
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.cache.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.cache.entries.capacity() * std::mem::size_of::<EntryMeta>()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.cache.len(),
            resident_bytes: self.cache.used_bytes(),
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_lru_basics() {
        let mut m = ModelLru::new(300);
        m.insert_mru(ObjectId(1), 100, 0);
        m.insert_mru(ObjectId(2), 100, 1);
        m.insert_lru(ObjectId(3), 100, 2);
        assert_eq!(m.used_bytes(), 300);
        let order: Vec<u64> = m.iter().map(|e| e.id.0).collect();
        assert_eq!(order, vec![2, 1, 3]);
        assert_eq!(m.evict_lru().unwrap().id, ObjectId(3));
        m.promote_to_mru(ObjectId(1));
        assert_eq!(m.peek_mru().unwrap().id, ObjectId(1));
    }

    #[test]
    fn model_lru_resize_evicts_oldest_first() {
        let mut m = ModelLru::new(300);
        m.insert_mru(ObjectId(1), 100, 0);
        m.insert_mru(ObjectId(2), 100, 1);
        m.insert_mru(ObjectId(3), 100, 2);
        let ev = m.set_capacity(150);
        assert_eq!(ev.iter().map(|e| e.id.0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(m.used_bytes(), 100);
    }

    #[test]
    fn model_ghost_mirrors_real_semantics() {
        let mut g = ModelGhost::new(250);
        for i in 0..3 {
            g.add(GhostEntry {
                id: ObjectId(i),
                size: 100,
                evicted_tick: i,
                tag: 0,
            });
        }
        assert!(!g.contains(ObjectId(0)));
        assert_eq!(g.used_bytes(), 200);
        g.add(GhostEntry {
            id: ObjectId(9),
            size: 500,
            evicted_tick: 3,
            tag: 0,
        });
        assert!(!g.contains(ObjectId(9)));
    }

    #[test]
    fn model_policy_rejects_oversized_untouched() {
        let mut p = ModelLruPolicy::new(10, InsertPos::Mru);
        let r = Request::new(0, 1, 100);
        assert_eq!(
            p.on_request(&r),
            AccessKind::Rejected(RejectReason::TooLarge)
        );
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.stats().insertions, 0);
    }
}
