//! The policy interface every caching algorithm in the workspace implements.
//!
//! A policy owns its cache structure(s) and is driven one request at a time
//! by the simulator. The trait is object-safe so the simulator can sweep
//! heterogeneous policy sets (`Box<dyn CachePolicy>`).

use crate::object::{ObjectId, Request, Tick};
use crate::queue::{EntryMeta, LruQueue};

/// Where an object is (re-)inserted in the recency queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertPos {
    /// Head of the queue (most-recently-used end).
    Mru,
    /// Tail of the queue (least-recently-used end).
    Lru,
}

/// Why a request was rejected without touching cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// `req.size > capacity`: the object can never fit, so admitting it
    /// would evict the whole cache for nothing. No insertion, no eviction,
    /// no ghost/history write.
    TooLarge,
}

/// Outcome of a single request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Object was resident.
    Hit,
    /// Object was not resident (and was fetched/inserted if admissible).
    Miss,
    /// Object was not resident and the policy refused to consider it.
    /// Counts as a miss for hit-ratio purposes ([`AccessKind::is_hit`] is
    /// false) but guarantees cache state was left untouched.
    Rejected(RejectReason),
}

impl AccessKind {
    /// True for [`AccessKind::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessKind::Hit)
    }

    /// True for [`AccessKind::Rejected`].
    pub fn is_rejected(self) -> bool {
        matches!(self, AccessKind::Rejected(_))
    }
}

/// Aggregate counters a policy can report for diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Objects currently resident.
    pub resident_objects: usize,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Evictions performed so far.
    pub evictions: u64,
    /// Insertions performed so far.
    pub insertions: u64,
}

/// One resident object as exported by
/// [`CachePolicy::for_each_resident`] and replayed by
/// [`CachePolicy::restore_resident`] — the whole [`EntryMeta`] plus a
/// policy-private `bucket` naming the compartment the entry lives in
/// (segment index for segmented queues, window/main for W-TinyLFU, 0 for
/// single-queue policies), so a restore can put it back where it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentEntry {
    /// Object identity.
    pub id: ObjectId,
    /// Object size in bytes.
    pub size: u64,
    /// Policy compartment the entry resides in (see struct docs).
    pub bucket: u32,
    /// Whether the current residency began at the MRU position.
    pub inserted_at_mru: bool,
    /// Tick when this residency began.
    pub inserted_tick: Tick,
    /// Tick of the most recent access.
    pub last_access: Tick,
    /// Hits during this residency.
    pub hits: u32,
    /// Policy-private tag (segment index, SHiP signature, ...).
    pub tag: u64,
}

impl ResidentEntry {
    /// Wrap a queue entry with its compartment index.
    pub fn from_meta(meta: &EntryMeta, bucket: u32) -> Self {
        ResidentEntry {
            id: meta.id,
            size: meta.size,
            bucket,
            inserted_at_mru: meta.inserted_at_mru,
            inserted_tick: meta.inserted_tick,
            last_access: meta.last_access,
            hits: meta.hits,
            tag: meta.tag,
        }
    }

    /// The queue-level view of this entry (drops the bucket).
    pub fn to_meta(&self) -> EntryMeta {
        EntryMeta {
            id: self.id,
            size: self.size,
            inserted_at_mru: self.inserted_at_mru,
            inserted_tick: self.inserted_tick,
            last_access: self.last_access,
            hits: self.hits,
            tag: self.tag,
        }
    }
}

/// A complete cache replacement algorithm (victim selection + insertion +
/// promotion) driven request by request.
pub trait CachePolicy {
    /// Short identifier used in tables and figures (e.g. `"SCIP"`).
    fn name(&self) -> &str;

    /// Process one request and report hit/miss.
    ///
    /// On a miss the policy is expected to admit the object (unless its own
    /// admission logic declines or the object exceeds capacity), evicting as
    /// needed. Requests must arrive with non-decreasing `tick`.
    fn on_request(&mut self, req: &Request) -> AccessKind;

    /// Byte capacity of the managed cache.
    fn capacity(&self) -> u64;

    /// Bytes currently resident.
    fn used_bytes(&self) -> u64;

    /// Approximate bytes of policy metadata (queues, maps, ghost lists,
    /// models). Basis of the paper's Figure 9(b)/11(b) memory comparison.
    fn memory_bytes(&self) -> usize;

    /// Aggregate counters.
    fn stats(&self) -> PolicyStats;

    /// Hint that `id` will be requested a few steps from now. Policies
    /// backed by a fused index pull the relevant bucket toward L1 so the
    /// eventual lookup probe starts warm; the default is a no-op, so
    /// correctness never depends on this being called (or implemented).
    #[inline]
    fn prefetch_hint(&self, _id: ObjectId) {}

    /// Batch probe entry point: hint every id in `ids` at once. The
    /// software-pipelined replay loop uses this to prime its first
    /// lookahead window, and a sharded daemon can warm a whole dequeued
    /// request batch before touching any entry. Like
    /// [`CachePolicy::prefetch_hint`], purely advisory — no state changes,
    /// no effect on outcomes.
    #[inline]
    fn prefetch_batch(&self, ids: &[ObjectId]) {
        for &id in ids {
            self.prefetch_hint(id);
        }
    }

    /// Walk the resident set read-only, hottest compartment first and
    /// MRU→LRU within each compartment, and return `true`. The seam the
    /// cdnd snapshot subsystem exports through: implementations must take
    /// `&self` semantics literally — no promotion, no counter bumps, no
    /// history writes — so exporting a snapshot can never perturb the
    /// ledger. The default returns `false` (export unsupported → the
    /// daemon restarts that shard cold).
    fn for_each_resident(&self, _visit: &mut dyn FnMut(&ResidentEntry)) -> bool {
        false
    }

    /// Rebuild warmth from a previously exported resident set, given in
    /// the order [`CachePolicy::for_each_resident`] yields (hottest
    /// first). Only call on a freshly built (empty) policy. Entries that
    /// no longer fit, duplicate ids, or out-of-range buckets are skipped
    /// defensively, never panicked on — snapshot files are CRC-validated
    /// upstream but restores must survive anything that slips through.
    /// Returns `false` when the policy cannot restore (cold restart);
    /// learned/approximate side state (sketches, ghost lists, models)
    /// restarts cold unless [`CachePolicy::restore_learned`] covers it.
    fn restore_resident(&mut self, _entries: &[ResidentEntry]) -> bool {
        false
    }

    /// Export the policy's small learned-parameter block (for SCIP: the
    /// per-size-class ω_m vector, ω_p, the λ learning-rate state and the
    /// traversal estimate) as an opaque, versioned byte blob. `None` means
    /// the policy has no learned block worth snapshotting.
    fn export_learned(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore a learned block previously produced by
    /// [`CachePolicy::export_learned`]. Implementations must validate the
    /// blob (version, length, finiteness) and re-clamp every parameter
    /// into its invariant range so `audit()` holds afterwards; `false`
    /// means the blob was unrecognized and ignored (state left as built).
    fn restore_learned(&mut self, _block: &[u8]) -> bool {
        false
    }
}

/// Walk `queue` MRU→LRU as [`ResidentEntry`]s in compartment `bucket` —
/// the shared body of [`CachePolicy::for_each_resident`] for policies
/// backed by a single [`LruQueue`]. Strictly read-only.
pub fn export_lru_queue(queue: &LruQueue, bucket: u32, visit: &mut dyn FnMut(&ResidentEntry)) {
    for meta in queue.iter() {
        visit(&ResidentEntry::from_meta(&meta, bucket));
    }
}

/// Replay exported `entries` (hottest-first) into `queue` coldest-first
/// at the MRU end, reconstructing the original recency order with all
/// residency statistics preserved — the shared body of
/// [`CachePolicy::restore_resident`] for single-[`LruQueue`] policies.
/// Duplicate ids and entries that no longer fit are skipped defensively.
pub fn restore_lru_queue(queue: &mut LruQueue, entries: &[ResidentEntry]) {
    for e in entries.iter().rev() {
        if queue.contains(e.id) || queue.used_bytes().saturating_add(e.size) > queue.capacity() {
            continue;
        }
        queue.insert_meta_mru(e.to_meta());
    }
}

/// Walk a [`SegmentedQueue`] most-protected segment first, MRU→LRU within
/// each segment, recording the segment index as the entry's `bucket` —
/// the shared `for_each_resident` body for the segmented-queue family.
pub fn export_segmented_queue(
    queue: &crate::segq::SegmentedQueue,
    visit: &mut dyn FnMut(&ResidentEntry),
) {
    for seg in (0..queue.n_segments()).rev() {
        for meta in queue.iter_segment(seg) {
            visit(&ResidentEntry::from_meta(&meta, seg as u32));
        }
    }
}

/// Replay exported `entries` into a [`SegmentedQueue`] coldest-first,
/// each at the MRU position of its recorded segment (clamped to the
/// queue's segment count), so per-segment recency order is reconstructed.
/// Overflow rebalances exactly like a live insert; skips are defensive.
pub fn restore_segmented_queue(queue: &mut crate::segq::SegmentedQueue, entries: &[ResidentEntry]) {
    let top = queue.n_segments() - 1;
    for e in entries.iter().rev() {
        if queue.contains(e.id) || queue.used_bytes().saturating_add(e.size) > queue.capacity() {
            continue;
        }
        queue.insert_meta((e.bucket as usize).min(top), e.to_meta());
    }
}

impl<P: CachePolicy + ?Sized> CachePolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_request(&mut self, req: &Request) -> AccessKind {
        (**self).on_request(req)
    }
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
    fn used_bytes(&self) -> u64 {
        (**self).used_bytes()
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn stats(&self) -> PolicyStats {
        (**self).stats()
    }
    fn prefetch_hint(&self, id: ObjectId) {
        (**self).prefetch_hint(id)
    }
    fn prefetch_batch(&self, ids: &[ObjectId]) {
        (**self).prefetch_batch(ids)
    }
    fn for_each_resident(&self, visit: &mut dyn FnMut(&ResidentEntry)) -> bool {
        (**self).for_each_resident(visit)
    }
    fn restore_resident(&mut self, entries: &[ResidentEntry]) -> bool {
        (**self).restore_resident(entries)
    }
    fn export_learned(&self) -> Option<Vec<u8>> {
        (**self).export_learned()
    }
    fn restore_learned(&mut self, block: &[u8]) -> bool {
        (**self).restore_learned(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_helpers() {
        assert!(AccessKind::Hit.is_hit());
        assert!(!AccessKind::Miss.is_hit());
        assert!(!AccessKind::Rejected(RejectReason::TooLarge).is_hit());
        assert!(AccessKind::Rejected(RejectReason::TooLarge).is_rejected());
        assert!(!AccessKind::Miss.is_rejected());
    }

    #[test]
    fn trait_is_object_safe() {
        // Compile-time check: Box<dyn CachePolicy> must be constructible.
        struct Nop;
        impl CachePolicy for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn on_request(&mut self, _req: &Request) -> AccessKind {
                AccessKind::Miss
            }
            fn capacity(&self) -> u64 {
                0
            }
            fn used_bytes(&self) -> u64 {
                0
            }
            fn memory_bytes(&self) -> usize {
                0
            }
            fn stats(&self) -> PolicyStats {
                PolicyStats::default()
            }
        }
        let mut p: Box<dyn CachePolicy> = Box::new(Nop);
        let req = Request::new(0, 1, 10);
        assert_eq!(p.on_request(&req), AccessKind::Miss);
        assert_eq!(p.name(), "nop");
    }
}
