//! The policy interface every caching algorithm in the workspace implements.
//!
//! A policy owns its cache structure(s) and is driven one request at a time
//! by the simulator. The trait is object-safe so the simulator can sweep
//! heterogeneous policy sets (`Box<dyn CachePolicy>`).

use crate::object::{ObjectId, Request};

/// Where an object is (re-)inserted in the recency queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertPos {
    /// Head of the queue (most-recently-used end).
    Mru,
    /// Tail of the queue (least-recently-used end).
    Lru,
}

/// Why a request was rejected without touching cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// `req.size > capacity`: the object can never fit, so admitting it
    /// would evict the whole cache for nothing. No insertion, no eviction,
    /// no ghost/history write.
    TooLarge,
}

/// Outcome of a single request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Object was resident.
    Hit,
    /// Object was not resident (and was fetched/inserted if admissible).
    Miss,
    /// Object was not resident and the policy refused to consider it.
    /// Counts as a miss for hit-ratio purposes ([`AccessKind::is_hit`] is
    /// false) but guarantees cache state was left untouched.
    Rejected(RejectReason),
}

impl AccessKind {
    /// True for [`AccessKind::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessKind::Hit)
    }

    /// True for [`AccessKind::Rejected`].
    pub fn is_rejected(self) -> bool {
        matches!(self, AccessKind::Rejected(_))
    }
}

/// Aggregate counters a policy can report for diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Objects currently resident.
    pub resident_objects: usize,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Evictions performed so far.
    pub evictions: u64,
    /// Insertions performed so far.
    pub insertions: u64,
}

/// A complete cache replacement algorithm (victim selection + insertion +
/// promotion) driven request by request.
pub trait CachePolicy {
    /// Short identifier used in tables and figures (e.g. `"SCIP"`).
    fn name(&self) -> &str;

    /// Process one request and report hit/miss.
    ///
    /// On a miss the policy is expected to admit the object (unless its own
    /// admission logic declines or the object exceeds capacity), evicting as
    /// needed. Requests must arrive with non-decreasing `tick`.
    fn on_request(&mut self, req: &Request) -> AccessKind;

    /// Byte capacity of the managed cache.
    fn capacity(&self) -> u64;

    /// Bytes currently resident.
    fn used_bytes(&self) -> u64;

    /// Approximate bytes of policy metadata (queues, maps, ghost lists,
    /// models). Basis of the paper's Figure 9(b)/11(b) memory comparison.
    fn memory_bytes(&self) -> usize;

    /// Aggregate counters.
    fn stats(&self) -> PolicyStats;

    /// Hint that `id` will be requested a few steps from now. Policies
    /// backed by a fused index pull the relevant bucket toward L1 so the
    /// eventual lookup probe starts warm; the default is a no-op, so
    /// correctness never depends on this being called (or implemented).
    #[inline]
    fn prefetch_hint(&self, _id: ObjectId) {}

    /// Batch probe entry point: hint every id in `ids` at once. The
    /// software-pipelined replay loop uses this to prime its first
    /// lookahead window, and a sharded daemon can warm a whole dequeued
    /// request batch before touching any entry. Like
    /// [`CachePolicy::prefetch_hint`], purely advisory — no state changes,
    /// no effect on outcomes.
    #[inline]
    fn prefetch_batch(&self, ids: &[ObjectId]) {
        for &id in ids {
            self.prefetch_hint(id);
        }
    }
}

impl<P: CachePolicy + ?Sized> CachePolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_request(&mut self, req: &Request) -> AccessKind {
        (**self).on_request(req)
    }
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
    fn used_bytes(&self) -> u64 {
        (**self).used_bytes()
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn stats(&self) -> PolicyStats {
        (**self).stats()
    }
    fn prefetch_hint(&self, id: ObjectId) {
        (**self).prefetch_hint(id)
    }
    fn prefetch_batch(&self, ids: &[ObjectId]) {
        (**self).prefetch_batch(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_helpers() {
        assert!(AccessKind::Hit.is_hit());
        assert!(!AccessKind::Miss.is_hit());
        assert!(!AccessKind::Rejected(RejectReason::TooLarge).is_hit());
        assert!(AccessKind::Rejected(RejectReason::TooLarge).is_rejected());
        assert!(!AccessKind::Miss.is_rejected());
    }

    #[test]
    fn trait_is_object_safe() {
        // Compile-time check: Box<dyn CachePolicy> must be constructible.
        struct Nop;
        impl CachePolicy for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn on_request(&mut self, _req: &Request) -> AccessKind {
                AccessKind::Miss
            }
            fn capacity(&self) -> u64 {
                0
            }
            fn used_bytes(&self) -> u64 {
                0
            }
            fn memory_bytes(&self) -> usize {
                0
            }
            fn stats(&self) -> PolicyStats {
                PolicyStats::default()
            }
        }
        let mut p: Box<dyn CachePolicy> = Box::new(Nop);
        let req = Request::new(0, 1, 10);
        assert_eq!(p.on_request(&req), AccessKind::Miss);
        assert_eq!(p.name(), "nop");
    }
}
