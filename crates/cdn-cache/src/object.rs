//! Object identifiers, request records and logical time.

use std::fmt;

/// Logical time: the index of a request within a trace.
///
/// The paper's algorithms are clocked by request count (`t % i == 0`
/// triggers the learning-rate update), so a `u64` request index is the
/// natural notion of time. Wall-clock timestamps from real traces are kept
/// separately in [`Request::wall_secs`] for the TDC latency model.
pub type Tick = u64;

/// A cached object's identity.
///
/// Real CDN objects are keyed by URL/MD5; synthetic traces use dense ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Logical time = index of this request in the trace.
    pub tick: Tick,
    /// Object being requested.
    pub id: ObjectId,
    /// Object size in bytes. CDN caches are size-aware: the same object is
    /// assumed to keep its size across a trace (true of the paper's traces;
    /// our generators guarantee it).
    pub size: u64,
    /// Wall-clock seconds since trace start (drives the TDC diurnal model).
    pub wall_secs: f64,
}

impl Request {
    /// Convenience constructor for tests and micro-traces: wall time is the
    /// tick interpreted as one request per second.
    pub fn new(tick: Tick, id: u64, size: u64) -> Self {
        Request {
            tick,
            id: ObjectId(id),
            size,
            wall_secs: tick as f64,
        }
    }
}

/// Build a micro-trace from `(id, size)` pairs; ticks are assigned 0..n.
/// Test helper used across the workspace.
pub fn micro_trace(pairs: &[(u64, u64)]) -> Vec<Request> {
    pairs
        .iter()
        .enumerate()
        .map(|(t, &(id, size))| Request::new(t as Tick, id, size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let id: ObjectId = 42u64.into();
        assert_eq!(id.to_string(), "o42");
        assert_eq!(id, ObjectId(42));
    }

    #[test]
    fn micro_trace_assigns_ticks() {
        let t = micro_trace(&[(1, 100), (2, 200), (1, 100)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].tick, 2);
        assert_eq!(t[2].id, ObjectId(1));
        assert_eq!(t[1].size, 200);
        assert_eq!(t[1].wall_secs, 1.0);
    }
}
