//! Seeded, allocation-free pseudo-random number generation.
//!
//! Every stochastic component of the workspace (trace generators, BIP coin
//! flips, SCIP's `γ` draws, hill-climbing restarts, model initialisation)
//! draws from [`SimRng`], a xoshiro256++ generator seeded through SplitMix64.
//! Using our own generator instead of the `rand` crate keeps simulations
//! bit-for-bit reproducible across crate-version bumps and avoids API churn
//! in ~40 call sites.

/// xoshiro256++ PRNG (Blackman & Vigna, 2019).
///
/// Passes BigCrush; period `2^256 - 1`. Not cryptographically secure —
/// which is fine, simulation only.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    ///
    /// The seed is expanded with SplitMix64 as recommended by the xoshiro
    /// authors, so even seeds 0, 1, 2... yield well-mixed states.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "u64_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    #[inline]
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.u64_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial: `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (uses two uniforms per pair; the
    /// second variate is discarded for simplicity — generation is not hot
    /// enough to warrant caching it).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal sample with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential sample with rate `lambda`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.usize_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derive an independent child generator (for parallel workers).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn u64_below_respects_bound() {
        let mut r = SimRng::new(9);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..1000 {
                assert!(r.u64_below(bound) < bound);
            }
        }
    }

    #[test]
    fn u64_below_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.usize_below(10)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).abs() < (expected as i64) / 10,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn normal_mean_and_var() {
        let mut r = SimRng::new(13);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(17);
        let n = 200_000;
        let lambda = 0.5;
        let mean: f64 = (0..n).map(|_| r.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Extremely unlikely to be identity.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(23);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = SimRng::new(31);
        let mut child = a.fork();
        let same = (0..100)
            .filter(|_| a.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }
}
