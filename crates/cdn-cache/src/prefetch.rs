//! Safe software-prefetch shim.
//!
//! Eviction loops and the batched replay mode know the *next* node they
//! will touch one step before they touch it; issuing a prefetch for it
//! overlaps that future cache miss with current work. `_mm_prefetch` is a
//! hint with no architectural side effects, so wrapping it behind a
//! reference (always a valid address) makes the shim safe to call from
//! hot paths, and non-x86_64 targets compile it to nothing.

/// Hint the CPU to pull the cache line holding `r` into L1 (read intent).
#[inline(always)]
pub fn prefetch_read<T>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `r` is a live reference, so the address is valid; prefetch
    // performs no memory access that can fault.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            r as *const T as *const i8,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        let v = vec![1u64, 2, 3];
        prefetch_read(&v[0]);
        prefetch_read(&v[2]);
        assert_eq!(v, vec![1, 2, 3]);
    }
}
