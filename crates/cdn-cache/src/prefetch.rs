//! Safe software-prefetch shim.
//!
//! Eviction loops and the batched replay mode know the *next* node they
//! will touch one step before they touch it; issuing a prefetch for it
//! overlaps that future cache miss with current work. `_mm_prefetch` is a
//! hint with no architectural side effects, so wrapping it behind a
//! reference (always a valid address) makes the shim safe to call from
//! hot paths, and non-x86_64 targets compile it to nothing.

/// Hint the CPU to pull the cache line holding `r` into L1 (read intent).
#[inline(always)]
pub fn prefetch_read<T>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `r` is a live reference, so the address is valid; prefetch
    // performs no memory access that can fault.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            r as *const T as *const i8,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = r;
    }
}

/// Last-level-cache size estimate in bytes, cached after the first call.
///
/// The batched replay path only pays off when the policy's index outgrows
/// the LLC (an L2/L3-resident index has no DRAM latency to hide, and the
/// lookahead adds pure dispatch cost), so the auto-enable heuristic needs a
/// number to compare footprints against. Reads the sysfs cache hierarchy
/// (largest of `index0..=index4` on cpu0); falls back to 32 MiB — a
/// deliberately *high* guess, so on unknown platforms batching stays off
/// until the index is unambiguously DRAM-resident.
pub fn llc_bytes() -> usize {
    static LLC: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LLC.get_or_init(|| detect_llc_bytes().unwrap_or(32 << 20))
}

fn detect_llc_bytes() -> Option<usize> {
    let mut best = None;
    for index in 0..=4 {
        let dir = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
        let Ok(size) = std::fs::read_to_string(format!("{dir}/size")) else {
            continue;
        };
        let size = size.trim();
        let bytes = match size.strip_suffix('K') {
            Some(k) => k.parse::<usize>().ok()? * 1024,
            None => match size.strip_suffix('M') {
                Some(m) => m.parse::<usize>().ok()? * 1024 * 1024,
                None => size.parse::<usize>().ok()?,
            },
        };
        best = Some(best.map_or(bytes, |b: usize| b.max(bytes)));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llc_bytes_is_sane_and_stable() {
        let llc = llc_bytes();
        // Between 256 KiB and 4 GiB covers every machine this will run on,
        // including the 32 MiB fallback.
        assert!((256 << 10..=4 << 30).contains(&llc), "llc {llc}");
        assert_eq!(llc, llc_bytes(), "cached value must be stable");
    }

    #[test]
    fn prefetch_is_a_pure_hint() {
        let v = vec![1u64, 2, 3];
        prefetch_read(&v[0]);
        prefetch_read(&v[2]);
        assert_eq!(v, vec![1, 2, 3]);
    }
}
