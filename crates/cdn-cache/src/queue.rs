//! A byte-budgeted LRU queue with bimodal insertion.
//!
//! This is the "real cache" structure of the paper: a recency queue whose
//! front is the MRU position and whose back is the LRU position, holding
//! variable-size objects under a byte capacity. Insertion policies choose
//! the end (or an interior point) at which an object enters; the victim
//! policy evicts from the back. Each entry carries the `insert_pos` mark the
//! paper stores in TDC inodes, plus residency statistics used by labelers
//! and learned policies.

use crate::hash::FxHashMap;
use crate::list::{Handle, LinkedSlab};
use crate::object::{ObjectId, Tick};

/// Metadata of one resident object (the paper's ~110-byte inode analog).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryMeta {
    /// Object identity.
    pub id: ObjectId,
    /// Object size in bytes.
    pub size: u64,
    /// The paper's `insert_pos`: true if the *current residency* began at
    /// the MRU position (set again on every promotion re-insert).
    pub inserted_at_mru: bool,
    /// Tick when this residency began.
    pub inserted_tick: Tick,
    /// Tick of the most recent access (insert or hit).
    pub last_access: Tick,
    /// Hits during this residency (0 on insert).
    pub hits: u32,
    /// Policy-private tag (segment index, SHiP signature, LRB group id...).
    pub tag: u64,
}

/// An entry evicted from the queue's LRU end.
pub type EvictedEntry = EntryMeta;

/// Byte-budgeted LRU queue. All operations are O(1).
#[derive(Debug, Clone)]
pub struct LruQueue {
    list: LinkedSlab<EntryMeta>,
    map: FxHashMap<ObjectId, Handle>,
    capacity: u64,
    used: u64,
}

impl LruQueue {
    /// Queue with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        LruQueue {
            list: LinkedSlab::new(),
            map: FxHashMap::default(),
            capacity,
            used: 0,
        }
    }

    /// Byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when no objects are resident.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// True if the object is resident.
    #[inline]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    /// One-probe residency lookup: the entry's [`Handle`], if resident.
    /// The handle stays valid until the entry is removed or evicted, so a
    /// hot hit path can pay for the hash lookup once and drive the
    /// `*_at` methods with the handle.
    #[inline]
    pub fn lookup(&self, id: ObjectId) -> Option<Handle> {
        self.map.get(&id).copied()
    }

    /// Shared access to a resident entry's metadata.
    #[inline]
    pub fn get(&self, id: ObjectId) -> Option<&EntryMeta> {
        self.map.get(&id).map(|&h| self.list.get(h))
    }

    /// Mutable access to a resident entry's metadata.
    #[inline]
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut EntryMeta> {
        let h = *self.map.get(&id)?;
        Some(self.list.get_mut(h))
    }

    /// Shared access through a [`Handle`] obtained from
    /// [`LruQueue::lookup`] (no hash probe).
    #[inline]
    pub fn get_at(&self, h: Handle) -> &EntryMeta {
        self.list.get(h)
    }

    /// Mutable access through a [`Handle`] (no hash probe).
    #[inline]
    pub fn get_at_mut(&mut self, h: Handle) -> &mut EntryMeta {
        self.list.get_mut(h)
    }

    /// Whether inserting `size` bytes would require evictions. Saturating:
    /// adversarial sizes near `u64::MAX` must report "needs eviction", not
    /// wrap around and report free space.
    pub fn needs_eviction_for(&self, size: u64) -> bool {
        self.used.saturating_add(size) > self.capacity
    }

    /// Whether an object of `size` bytes can ever fit.
    pub fn admissible(&self, size: u64) -> bool {
        size <= self.capacity
    }

    fn make_meta(id: ObjectId, size: u64, tick: Tick, at_mru: bool) -> EntryMeta {
        EntryMeta {
            id,
            size,
            inserted_at_mru: at_mru,
            inserted_tick: tick,
            last_access: tick,
            hits: 0,
            tag: 0,
        }
    }

    /// Insert at the MRU position (front). The object must not be resident
    /// and must fit (callers evict first). Marks `inserted_at_mru = true`.
    /// Returns the new entry's [`Handle`] so callers can tag it without
    /// re-probing the map.
    #[inline]
    pub fn insert_mru(&mut self, id: ObjectId, size: u64, tick: Tick) -> Handle {
        debug_assert!(!self.contains(id), "insert of resident object {id}");
        debug_assert!(
            self.used.saturating_add(size) <= self.capacity,
            "insert overflows"
        );
        let h = self.list.push_front(Self::make_meta(id, size, tick, true));
        self.map.insert(id, h);
        self.used += size;
        h
    }

    /// Insert at the LRU position (back). Marks `inserted_at_mru = false`.
    /// Returns the new entry's [`Handle`].
    #[inline]
    pub fn insert_lru(&mut self, id: ObjectId, size: u64, tick: Tick) -> Handle {
        debug_assert!(!self.contains(id), "insert of resident object {id}");
        debug_assert!(
            self.used.saturating_add(size) <= self.capacity,
            "insert overflows"
        );
        let h = self.list.push_back(Self::make_meta(id, size, tick, false));
        self.map.insert(id, h);
        self.used += size;
        h
    }

    /// Re-insert a preserved entry at the MRU position without resetting
    /// its residency statistics (used when entries migrate between segments
    /// of a [`crate::SegmentedQueue`]).
    pub fn insert_meta_mru(&mut self, meta: EntryMeta) {
        debug_assert!(!self.contains(meta.id), "insert of resident object");
        debug_assert!(
            self.used.saturating_add(meta.size) <= self.capacity,
            "insert overflows"
        );
        let id = meta.id;
        let size = meta.size;
        let h = self.list.push_front(meta);
        self.map.insert(id, h);
        self.used += size;
    }

    /// Re-insert a preserved entry at the LRU position (see
    /// [`LruQueue::insert_meta_mru`]).
    pub fn insert_meta_lru(&mut self, meta: EntryMeta) {
        debug_assert!(!self.contains(meta.id), "insert of resident object");
        debug_assert!(
            self.used.saturating_add(meta.size) <= self.capacity,
            "insert overflows"
        );
        let id = meta.id;
        let size = meta.size;
        let h = self.list.push_back(meta);
        self.map.insert(id, h);
        self.used += size;
    }

    /// Record a hit: bump hit count and last-access *without* moving the
    /// entry. Promotion is a separate decision taken by the policy.
    #[inline]
    pub fn record_hit(&mut self, id: ObjectId, tick: Tick) {
        if let Some(&h) = self.map.get(&id) {
            self.record_hit_at(h, tick);
        }
    }

    /// [`LruQueue::record_hit`] through a [`Handle`] (no hash probe).
    #[inline]
    pub fn record_hit_at(&mut self, h: Handle, tick: Tick) {
        let meta = self.list.get_mut(h);
        meta.hits += 1;
        meta.last_access = tick;
    }

    /// Move a resident object to the MRU position (classic promotion).
    #[inline]
    pub fn promote_to_mru(&mut self, id: ObjectId) {
        if let Some(&h) = self.map.get(&id) {
            self.list.move_to_front(h);
        }
    }

    /// [`LruQueue::promote_to_mru`] through a [`Handle`] (no hash probe).
    #[inline]
    pub fn promote_to_mru_at(&mut self, h: Handle) {
        self.list.move_to_front(h);
    }

    /// Move a resident object to the LRU position (demotion).
    #[inline]
    pub fn demote_to_lru(&mut self, id: ObjectId) {
        if let Some(&h) = self.map.get(&id) {
            self.list.move_to_back(h);
        }
    }

    /// [`LruQueue::demote_to_lru`] through a [`Handle`] (no hash probe).
    #[inline]
    pub fn demote_to_lru_at(&mut self, h: Handle) {
        self.list.move_to_back(h);
    }

    /// Move a resident object one slot toward MRU (PIPP-style promotion).
    #[inline]
    pub fn promote_one(&mut self, id: ObjectId) {
        if let Some(&h) = self.map.get(&id) {
            self.list.promote_one(h);
        }
    }

    /// [`LruQueue::promote_one`] through a [`Handle`] (no hash probe).
    #[inline]
    pub fn promote_one_at(&mut self, h: Handle) {
        self.list.promote_one(h);
    }

    /// Remove a resident object (the paper's `C.REMOVE`: no history write).
    pub fn remove(&mut self, id: ObjectId) -> Option<EntryMeta> {
        let h = self.map.remove(&id)?;
        let meta = self.list.remove(h);
        self.used -= meta.size;
        Some(meta)
    }

    /// Evict from the LRU end (the paper's `C.EVICT`), returning the victim.
    pub fn evict_lru(&mut self) -> Option<EvictedEntry> {
        let h = self.list.back()?;
        let meta = self.list.remove(h);
        self.map.remove(&meta.id);
        self.used -= meta.size;
        Some(meta)
    }

    /// Peek at the LRU-end victim without evicting.
    pub fn peek_lru(&self) -> Option<&EntryMeta> {
        self.list.back().map(|h| self.list.get(h))
    }

    /// Peek at the MRU-end entry.
    pub fn peek_mru(&self) -> Option<&EntryMeta> {
        self.list.front().map(|h| self.list.get(h))
    }

    /// Iterate entries MRU→LRU.
    pub fn iter(&self) -> impl Iterator<Item = &EntryMeta> {
        self.list.iter()
    }

    /// Approximate policy-metadata footprint in bytes (slab + map).
    pub fn memory_bytes(&self) -> usize {
        self.list.memory_bytes()
            + self.map.capacity()
                * (std::mem::size_of::<ObjectId>() + std::mem::size_of::<Handle>() + 8)
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.list.clear();
        self.map.clear();
        self.used = 0;
    }

    /// Resize the byte budget. Shrinking evicts from the LRU end until the
    /// queue fits again; the victims are returned oldest-first. Growing
    /// never evicts.
    pub fn set_capacity(&mut self, capacity: u64) -> Vec<EvictedEntry> {
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.used > self.capacity {
            match self.evict_lru() {
                Some(v) => evicted.push(v),
                None => break,
            }
        }
        evicted
    }

    /// Structural invariant walk (O(n)). Checks, in order:
    ///
    /// - the intrusive list is doubly-linked consistently (via
    ///   [`LinkedSlab::audit`]);
    /// - `used_bytes()` equals the sum of resident entry sizes (computed in
    ///   u128 so the audit itself cannot overflow);
    /// - `used_bytes() <= capacity()`;
    /// - the id→handle map and the list describe the same resident set.
    ///
    /// Returns a description of the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        self.list.audit()?;
        let mut sum: u128 = 0;
        let mut n = 0usize;
        for m in self.list.iter() {
            let h = self
                .map
                .get(&m.id)
                .ok_or_else(|| format!("lru: listed entry {} missing from map", m.id.0))?;
            if self.list.get(*h).id != m.id {
                return Err(format!("lru: map handle for {} resolves elsewhere", m.id.0));
            }
            sum += m.size as u128;
            n += 1;
        }
        if n != self.map.len() {
            return Err(format!(
                "lru: list has {n} entries, map has {}",
                self.map.len()
            ));
        }
        if sum != self.used as u128 {
            return Err(format!("lru: ledger used={} but Σsizes={sum}", self.used));
        }
        if self.used > self.capacity {
            return Err(format!(
                "lru: used={} exceeds capacity={}",
                self.used, self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(q: &LruQueue) -> Vec<u64> {
        q.iter().map(|m| m.id.0).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 200, 1);
        assert!(q.contains(ObjectId(1)));
        assert_eq!(q.used_bytes(), 300);
        assert_eq!(ids(&q), vec![2, 1]);
        assert!(q.get(ObjectId(2)).unwrap().inserted_at_mru);
    }

    #[test]
    fn insert_lru_goes_to_back() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_lru(ObjectId(2), 100, 1);
        assert_eq!(ids(&q), vec![1, 2]);
        assert!(!q.get(ObjectId(2)).unwrap().inserted_at_mru);
        assert_eq!(q.peek_lru().unwrap().id, ObjectId(2));
    }

    #[test]
    fn evict_from_lru_end() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 100, 1);
        let v = q.evict_lru().unwrap();
        assert_eq!(v.id, ObjectId(1));
        assert_eq!(q.used_bytes(), 100);
        assert!(!q.contains(ObjectId(1)));
    }

    #[test]
    fn record_hit_updates_stats_without_moving() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 100, 1);
        q.record_hit(ObjectId(1), 5);
        assert_eq!(ids(&q), vec![2, 1]);
        let m = q.get(ObjectId(1)).unwrap();
        assert_eq!(m.hits, 1);
        assert_eq!(m.last_access, 5);
    }

    #[test]
    fn promote_and_demote() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 100, 1);
        q.insert_mru(ObjectId(3), 100, 2);
        // order: 3 2 1
        q.promote_to_mru(ObjectId(1));
        assert_eq!(ids(&q), vec![1, 3, 2]);
        q.demote_to_lru(ObjectId(1));
        assert_eq!(ids(&q), vec![3, 2, 1]);
        q.promote_one(ObjectId(1));
        assert_eq!(ids(&q), vec![3, 1, 2]);
    }

    #[test]
    fn remove_does_not_touch_others() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 150, 1);
        let m = q.remove(ObjectId(1)).unwrap();
        assert_eq!(m.size, 100);
        assert_eq!(q.used_bytes(), 150);
        assert_eq!(q.remove(ObjectId(1)), None);
    }

    #[test]
    fn eviction_loop_frees_space() {
        let mut q = LruQueue::new(300);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 100, 1);
        q.insert_mru(ObjectId(3), 100, 2);
        // Need 150 bytes for a new object.
        let mut evicted = Vec::new();
        while q.needs_eviction_for(150) {
            evicted.push(q.evict_lru().unwrap().id.0);
        }
        assert_eq!(evicted, vec![1, 2]);
        q.insert_mru(ObjectId(4), 150, 3);
        assert_eq!(q.used_bytes(), 250);
    }

    #[test]
    fn admissibility() {
        let q = LruQueue::new(100);
        assert!(q.admissible(100));
        assert!(!q.admissible(101));
    }

    #[test]
    fn clear_empties() {
        let mut q = LruQueue::new(100);
        q.insert_mru(ObjectId(1), 50, 0);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
        assert!(!q.contains(ObjectId(1)));
    }
}
