//! A byte-budgeted LRU queue with bimodal insertion.
//!
//! This is the "real cache" structure of the paper: a recency queue whose
//! front is the MRU position and whose back is the LRU position, holding
//! variable-size objects under a byte capacity. Insertion policies choose
//! the end (or an interior point) at which an object enters; the victim
//! policy evicts from the back. Each entry carries the `insert_pos` mark the
//! paper stores in TDC inodes, plus residency statistics used by labelers
//! and learned policies.
//!
//! # Memory layout
//!
//! Residency is resolved by a fused open-addressing table
//! ([`FusedIndex`]) whose buckets hold `(id, packed handle)` inline — one
//! probe sequence, no second hashmap structure to miss on. Entry storage
//! is split hot/cold, structure-of-arrays:
//!
//! - **hot** ([`HotEntry`], 24 bytes, `const`-asserted ≤ 32): the link
//!   words plus every field the hit path touches (`hits`,
//!   `inserted_at_mru`, `last_access`). `record_hit` + a promotion touch
//!   exactly one hot line per node involved.
//! - **cold** ([`ColdEntry`], 32 bytes): `id`, `size`, `inserted_tick`,
//!   `tag` — read only on insert, evict and full-metadata reads.
//!
//! Free slots chain intrusively through `HotEntry::next`; liveness is the
//! generation's parity (even = live), so there is no `Option` per node and
//! no side free-list allocation. Because callers cannot hold references
//! into the split arrays, all metadata reads return [`EntryMeta`] by value
//! (56 bytes, cheaper than the pointer chase it replaces).

use crate::index::FusedIndex;
use crate::list::Handle;
use crate::object::{ObjectId, Tick};
use crate::prefetch::prefetch_read;

const NIL: u32 = u32::MAX;

/// `HotEntry::hits_flag` bit 31: current residency began at the MRU end.
const MRU_FLAG: u32 = 1 << 31;
/// Low 31 bits of `hits_flag`: saturating hit counter.
const HITS_MASK: u32 = MRU_FLAG - 1;

/// Hot half of one entry: links + the hit-path fields. See module docs.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct HotEntry {
    prev: u32,
    next: u32,
    /// Even = live, odd = free slot.
    generation: u32,
    /// Bit 31 = `inserted_at_mru`; low 31 bits = hits this residency.
    hits_flag: u32,
    last_access: Tick,
}

/// Cold half of one entry: identity and bookkeeping the hit path never
/// touches.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct ColdEntry {
    id: ObjectId,
    size: u64,
    inserted_tick: Tick,
    tag: u64,
}

// Layout regressions fail the build, not the benchmark: the hot node must
// stay within half a cache line (two nodes + change per 64-byte line).
const _: () = assert!(
    std::mem::size_of::<HotEntry>() <= 32,
    "hot node exceeds 32 B"
);
const _: () = assert!(std::mem::size_of::<HotEntry>() == 24);
const _: () = assert!(std::mem::size_of::<ColdEntry>() == 32);

/// Metadata of one resident object (the paper's ~110-byte inode analog).
/// Assembled by value from the hot/cold halves on read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryMeta {
    /// Object identity.
    pub id: ObjectId,
    /// Object size in bytes.
    pub size: u64,
    /// The paper's `insert_pos`: true if the *current residency* began at
    /// the MRU position (set again on every promotion re-insert).
    pub inserted_at_mru: bool,
    /// Tick when this residency began.
    pub inserted_tick: Tick,
    /// Tick of the most recent access (insert or hit).
    pub last_access: Tick,
    /// Hits during this residency (0 on insert).
    pub hits: u32,
    /// Policy-private tag (segment index, SHiP signature, LRB group id...).
    pub tag: u64,
}

/// An entry evicted from the queue's LRU end.
pub type EvictedEntry = EntryMeta;

/// Byte-budgeted LRU queue. All operations are O(1).
#[derive(Debug, Clone)]
pub struct LruQueue {
    hot: Vec<HotEntry>,
    cold: Vec<ColdEntry>,
    index: FusedIndex,
    free_head: u32,
    free_len: usize,
    head: u32,
    tail: u32,
    len: usize,
    capacity: u64,
    used: u64,
}

impl LruQueue {
    /// Queue with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        LruQueue {
            hot: Vec::new(),
            cold: Vec::new(),
            index: FusedIndex::new(),
            free_head: NIL,
            free_len: 0,
            head: NIL,
            tail: NIL,
            len: 0,
            capacity,
            used: 0,
        }
    }

    /// Byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objects are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the object is resident.
    #[inline]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.index.contains(id.0)
    }

    /// One-probe residency lookup: the entry's [`Handle`], if resident.
    /// The handle stays valid until the entry is removed or evicted, so a
    /// hot hit path can pay for the table probe once and drive the
    /// `*_at` methods with the handle.
    #[inline]
    pub fn lookup(&self, id: ObjectId) -> Option<Handle> {
        self.index.get(id.0).map(Handle::unpack)
    }

    /// Pull the index bucket for `id` toward L1 ahead of a
    /// [`LruQueue::lookup`] a few requests from now (batched replay).
    #[inline]
    pub fn prefetch_lookup(&self, id: ObjectId) {
        self.index.prefetch(id.0);
    }

    #[inline]
    fn check(&self, h: Handle) -> usize {
        // Handles are only minted with even (live) generations, so bare
        // equality also proves the slot has not been freed since.
        assert!(
            self.hot[h.idx as usize].generation == h.generation,
            "stale LruQueue handle"
        );
        h.idx as usize
    }

    #[inline]
    fn handle(&self, idx: u32) -> Handle {
        Handle {
            idx,
            generation: self.hot[idx as usize].generation,
        }
    }

    #[inline]
    fn meta_at_idx(&self, idx: usize) -> EntryMeta {
        let hot = &self.hot[idx];
        let cold = &self.cold[idx];
        EntryMeta {
            id: cold.id,
            size: cold.size,
            inserted_at_mru: hot.hits_flag & MRU_FLAG != 0,
            inserted_tick: cold.inserted_tick,
            last_access: hot.last_access,
            hits: hot.hits_flag & HITS_MASK,
            tag: cold.tag,
        }
    }

    /// Shared access to a resident entry's metadata.
    #[inline]
    pub fn get(&self, id: ObjectId) -> Option<EntryMeta> {
        self.lookup(id).map(|h| self.get_at(h))
    }

    /// Metadata through a [`Handle`] obtained from [`LruQueue::lookup`]
    /// (no table probe).
    #[inline]
    pub fn get_at(&self, h: Handle) -> EntryMeta {
        let idx = self.check(h);
        self.meta_at_idx(idx)
    }

    /// Hit count of this residency, through a [`Handle`]. Touches only the
    /// hot array.
    #[inline]
    pub fn hits_at(&self, h: Handle) -> u32 {
        let idx = self.check(h);
        self.hot[idx].hits_flag & HITS_MASK
    }

    /// Whether inserting `size` bytes would require evictions. Saturating:
    /// adversarial sizes near `u64::MAX` must report "needs eviction", not
    /// wrap around and report free space.
    pub fn needs_eviction_for(&self, size: u64) -> bool {
        self.used.saturating_add(size) > self.capacity
    }

    /// Whether an object of `size` bytes can ever fit.
    pub fn admissible(&self, size: u64) -> bool {
        size <= self.capacity
    }

    fn alloc(&mut self, id: ObjectId, size: u64, tick: Tick, hits_flag: u32, tag: u64) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let hot = &mut self.hot[idx as usize];
            debug_assert!(hot.generation % 2 == 1, "free slot with live parity");
            self.free_head = hot.next;
            self.free_len -= 1;
            hot.generation = hot.generation.wrapping_add(1); // odd → even: live
            hot.prev = NIL;
            hot.next = NIL;
            hot.hits_flag = hits_flag;
            hot.last_access = tick;
            self.cold[idx as usize] = ColdEntry {
                id,
                size,
                inserted_tick: tick,
                tag,
            };
            idx
        } else {
            let idx = self.hot.len() as u32;
            assert!(idx < NIL, "LruQueue slab overflow");
            self.hot.push(HotEntry {
                prev: NIL,
                next: NIL,
                generation: 0,
                hits_flag,
                last_access: tick,
            });
            self.cold.push(ColdEntry {
                id,
                size,
                inserted_tick: tick,
                tag,
            });
            idx
        }
    }

    #[inline]
    fn release(&mut self, idx: u32) {
        let hot = &mut self.hot[idx as usize];
        hot.generation = hot.generation.wrapping_add(1); // even → odd: free
        hot.next = self.free_head;
        self.free_head = idx;
        self.free_len += 1;
    }

    #[inline]
    fn link_front(&mut self, idx: u32) {
        self.hot[idx as usize].prev = NIL;
        self.hot[idx as usize].next = self.head;
        if self.head != NIL {
            self.hot[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    #[inline]
    fn link_back(&mut self, idx: u32) {
        self.hot[idx as usize].next = NIL;
        self.hot[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.hot[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    #[inline]
    fn unlink(&mut self, idx: u32) {
        let HotEntry { prev, next, .. } = self.hot[idx as usize];
        if prev != NIL {
            self.hot[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.hot[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn insert_entry(&mut self, meta: EntryMeta, front: bool) -> Handle {
        debug_assert!(!self.contains(meta.id), "insert of resident object");
        debug_assert!(
            self.used.saturating_add(meta.size) <= self.capacity,
            "insert overflows"
        );
        let hits_flag = (meta.hits & HITS_MASK) | if meta.inserted_at_mru { MRU_FLAG } else { 0 };
        let idx = self.alloc(meta.id, meta.size, meta.inserted_tick, hits_flag, meta.tag);
        self.hot[idx as usize].last_access = meta.last_access;
        if front {
            self.link_front(idx);
        } else {
            self.link_back(idx);
        }
        self.len += 1;
        self.used += meta.size;
        let h = self.handle(idx);
        self.index.insert(meta.id.0, h.pack());
        h
    }

    fn make_meta(id: ObjectId, size: u64, tick: Tick, at_mru: bool) -> EntryMeta {
        EntryMeta {
            id,
            size,
            inserted_at_mru: at_mru,
            inserted_tick: tick,
            last_access: tick,
            hits: 0,
            tag: 0,
        }
    }

    /// Insert at the MRU position (front). The object must not be resident
    /// and must fit (callers evict first). Marks `inserted_at_mru = true`.
    /// Returns the new entry's [`Handle`] so callers can tag it without
    /// re-probing the table.
    #[inline]
    pub fn insert_mru(&mut self, id: ObjectId, size: u64, tick: Tick) -> Handle {
        self.insert_entry(Self::make_meta(id, size, tick, true), true)
    }

    /// Insert at the LRU position (back). Marks `inserted_at_mru = false`.
    /// Returns the new entry's [`Handle`].
    #[inline]
    pub fn insert_lru(&mut self, id: ObjectId, size: u64, tick: Tick) -> Handle {
        self.insert_entry(Self::make_meta(id, size, tick, false), false)
    }

    /// Re-insert a preserved entry at the MRU position without resetting
    /// its residency statistics (used when entries migrate between segments
    /// of a [`crate::SegmentedQueue`]).
    pub fn insert_meta_mru(&mut self, meta: EntryMeta) {
        self.insert_entry(meta, true);
    }

    /// Re-insert a preserved entry at the LRU position (see
    /// [`LruQueue::insert_meta_mru`]).
    pub fn insert_meta_lru(&mut self, meta: EntryMeta) {
        self.insert_entry(meta, false);
    }

    /// Record a hit: bump hit count and last-access *without* moving the
    /// entry. Promotion is a separate decision taken by the policy.
    #[inline]
    pub fn record_hit(&mut self, id: ObjectId, tick: Tick) {
        if let Some(h) = self.lookup(id) {
            self.record_hit_at(h, tick);
        }
    }

    /// [`LruQueue::record_hit`] through a [`Handle`] (no table probe).
    /// Touches only the hot array.
    #[inline]
    pub fn record_hit_at(&mut self, h: Handle, tick: Tick) {
        let idx = self.check(h);
        let hot = &mut self.hot[idx];
        let hits = hot.hits_flag & HITS_MASK;
        hot.hits_flag = (hot.hits_flag & MRU_FLAG) | hits.saturating_add(1).min(HITS_MASK);
        hot.last_access = tick;
    }

    /// Record a hit that re-marks the residency's insertion end (the
    /// paper's PROMOTE realised in place): bump hits and last-access and
    /// set `inserted_at_mru = at_mru`, all in the hot array. Callers pair
    /// this with [`LruQueue::promote_to_mru_at`] /
    /// [`LruQueue::demote_to_lru_at`] to actually move the entry.
    #[inline]
    pub fn record_promotion_at(&mut self, h: Handle, at_mru: bool, tick: Tick) {
        let idx = self.check(h);
        let hot = &mut self.hot[idx];
        let hits = (hot.hits_flag & HITS_MASK).saturating_add(1).min(HITS_MASK);
        hot.hits_flag = hits | if at_mru { MRU_FLAG } else { 0 };
        hot.last_access = tick;
    }

    /// Set the policy-private tag through a [`Handle`].
    #[inline]
    pub fn set_tag_at(&mut self, h: Handle, tag: u64) {
        let idx = self.check(h);
        self.cold[idx].tag = tag;
    }

    /// Move a resident object to the MRU position (classic promotion).
    #[inline]
    pub fn promote_to_mru(&mut self, id: ObjectId) {
        if let Some(h) = self.lookup(id) {
            self.promote_to_mru_at(h);
        }
    }

    /// [`LruQueue::promote_to_mru`] through a [`Handle`] (no table probe).
    #[inline]
    pub fn promote_to_mru_at(&mut self, h: Handle) {
        let idx = self.check(h) as u32;
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.link_front(idx);
    }

    /// Move a resident object to the LRU position (demotion).
    #[inline]
    pub fn demote_to_lru(&mut self, id: ObjectId) {
        if let Some(h) = self.lookup(id) {
            self.demote_to_lru_at(h);
        }
    }

    /// [`LruQueue::demote_to_lru`] through a [`Handle`] (no table probe).
    #[inline]
    pub fn demote_to_lru_at(&mut self, h: Handle) {
        let idx = self.check(h) as u32;
        if self.tail == idx {
            return;
        }
        self.unlink(idx);
        self.link_back(idx);
    }

    /// Move a resident object one slot toward MRU (PIPP-style promotion).
    #[inline]
    pub fn promote_one(&mut self, id: ObjectId) {
        if let Some(h) = self.lookup(id) {
            self.promote_one_at(h);
        }
    }

    /// [`LruQueue::promote_one`] through a [`Handle`] (no table probe).
    #[inline]
    pub fn promote_one_at(&mut self, h: Handle) {
        let idx = self.check(h) as u32;
        let prev = self.hot[idx as usize].prev;
        if prev == NIL {
            return;
        }
        self.unlink(idx);
        let prev_prev = self.hot[prev as usize].prev;
        self.hot[idx as usize].prev = prev_prev;
        self.hot[idx as usize].next = prev;
        self.hot[prev as usize].prev = idx;
        if prev_prev != NIL {
            self.hot[prev_prev as usize].next = idx;
        } else {
            self.head = idx;
        }
    }

    fn remove_idx(&mut self, idx: u32) -> EntryMeta {
        let meta = self.meta_at_idx(idx as usize);
        self.unlink(idx);
        self.release(idx);
        self.index.remove(meta.id.0);
        self.used -= meta.size;
        self.len -= 1;
        meta
    }

    /// Remove a resident object (the paper's `C.REMOVE`: no history write).
    pub fn remove(&mut self, id: ObjectId) -> Option<EntryMeta> {
        let h = self.lookup(id)?;
        let idx = self.check(h) as u32;
        Some(self.remove_idx(idx))
    }

    /// Evict from the LRU end (the paper's `C.EVICT`), returning the victim.
    /// Prefetches the next victim's hot/cold nodes: eviction runs in
    /// make-room loops, so the node this call warms is touched by the next
    /// iteration.
    pub fn evict_lru(&mut self) -> Option<EvictedEntry> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        let prev = self.hot[idx as usize].prev;
        if prev != NIL {
            prefetch_read(&self.hot[prev as usize]);
            prefetch_read(&self.cold[prev as usize]);
        }
        Some(self.remove_idx(idx))
    }

    /// Peek at the LRU-end victim without evicting.
    pub fn peek_lru(&self) -> Option<EntryMeta> {
        (self.tail != NIL).then(|| self.meta_at_idx(self.tail as usize))
    }

    /// Peek at the MRU-end entry.
    pub fn peek_mru(&self) -> Option<EntryMeta> {
        (self.head != NIL).then(|| self.meta_at_idx(self.head as usize))
    }

    /// Iterate entries MRU→LRU (by value; the hot/cold split stores no
    /// whole `EntryMeta` to lend out).
    pub fn iter(&self) -> impl Iterator<Item = EntryMeta> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let idx = cur as usize;
            cur = self.hot[idx].next;
            Some(self.meta_at_idx(idx))
        })
    }

    /// True heap footprint of the structure in bytes: hot + cold arrays
    /// plus the fused index table.
    pub fn memory_bytes(&self) -> usize {
        self.hot.capacity() * std::mem::size_of::<HotEntry>()
            + self.cold.capacity() * std::mem::size_of::<ColdEntry>()
            + self.index.memory_bytes()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.hot.clear();
        self.cold.clear();
        self.index.clear();
        self.free_head = NIL;
        self.free_len = 0;
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
        self.used = 0;
    }

    /// Resize the byte budget. Shrinking evicts from the LRU end until the
    /// queue fits again; the victims are returned oldest-first. Growing
    /// never evicts.
    pub fn set_capacity(&mut self, capacity: u64) -> Vec<EvictedEntry> {
        self.capacity = capacity;
        let mut evicted = Vec::new();
        while self.used > self.capacity {
            match self.evict_lru() {
                Some(v) => evicted.push(v),
                None => break,
            }
        }
        evicted
    }

    /// Structural invariant walk (O(n)). Checks, in order:
    ///
    /// - the intrusive list is doubly-linked consistently (`prev` of each
    ///   node points at its actual predecessor), terminates at `tail`, and
    ///   visits exactly `len` live (even-parity) nodes without cycling;
    /// - the free chain holds exactly the remaining slots with free (odd)
    ///   parity, and the hot/cold arrays stay the same length;
    /// - `used_bytes()` equals the sum of resident entry sizes (computed in
    ///   u128 so the audit itself cannot overflow);
    /// - `used_bytes() <= capacity()`;
    /// - the fused index and the list describe the same resident set
    ///   (every listed id resolves to its own slot, and the counts match),
    ///   and the index's own probe invariants hold.
    ///
    /// Returns a description of the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        let mut seen = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        let mut sum: u128 = 0;
        while cur != NIL {
            if seen > self.hot.len() {
                return Err("lru: cycle detected walking head→tail".into());
            }
            let hot = &self.hot[cur as usize];
            if !hot.generation.is_multiple_of(2) {
                return Err(format!("lru: chained node {cur} has free parity"));
            }
            if hot.prev != prev {
                return Err(format!(
                    "lru: node {cur} has prev={} but predecessor is {prev}",
                    hot.prev
                ));
            }
            let cold = &self.cold[cur as usize];
            match self.index.get(cold.id.0).map(Handle::unpack) {
                None => {
                    return Err(format!(
                        "lru: listed entry {} missing from index",
                        cold.id.0
                    ));
                }
                Some(h) if h.idx != cur || h.generation != hot.generation => {
                    return Err(format!(
                        "lru: index handle for {} resolves elsewhere",
                        cold.id.0
                    ));
                }
                _ => {}
            }
            sum += cold.size as u128;
            prev = cur;
            cur = hot.next;
            seen += 1;
        }
        if prev != self.tail {
            return Err(format!(
                "lru: walk ended at {prev} but tail is {}",
                self.tail
            ));
        }
        if seen != self.len {
            return Err(format!("lru: walked {seen} nodes but len is {}", self.len));
        }
        let mut free_seen = 0usize;
        let mut f = self.free_head;
        while f != NIL {
            if free_seen > self.hot.len() {
                return Err("lru: cycle detected walking free chain".into());
            }
            if self.hot[f as usize].generation.is_multiple_of(2) {
                return Err(format!("lru: free slot {f} has live parity"));
            }
            f = self.hot[f as usize].next;
            free_seen += 1;
        }
        if free_seen != self.free_len {
            return Err(format!(
                "lru: free chain has {free_seen} slots but free_len is {}",
                self.free_len
            ));
        }
        if self.len + self.free_len != self.hot.len() {
            return Err(format!(
                "lru: {} live + {} free != {} slots",
                self.len,
                self.free_len,
                self.hot.len()
            ));
        }
        if self.hot.len() != self.cold.len() {
            return Err(format!(
                "lru: {} hot nodes but {} cold nodes",
                self.hot.len(),
                self.cold.len()
            ));
        }
        if seen != self.index.len() {
            return Err(format!(
                "lru: list has {seen} entries, index has {}",
                self.index.len()
            ));
        }
        self.index.audit().map_err(|e| format!("lru: {e}"))?;
        if sum != self.used as u128 {
            return Err(format!("lru: ledger used={} but Σsizes={sum}", self.used));
        }
        if self.used > self.capacity {
            return Err(format!(
                "lru: used={} exceeds capacity={}",
                self.used, self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(q: &LruQueue) -> Vec<u64> {
        q.iter().map(|m| m.id.0).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 200, 1);
        assert!(q.contains(ObjectId(1)));
        assert_eq!(q.used_bytes(), 300);
        assert_eq!(ids(&q), vec![2, 1]);
        assert!(q.get(ObjectId(2)).unwrap().inserted_at_mru);
    }

    #[test]
    fn insert_lru_goes_to_back() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_lru(ObjectId(2), 100, 1);
        assert_eq!(ids(&q), vec![1, 2]);
        assert!(!q.get(ObjectId(2)).unwrap().inserted_at_mru);
        assert_eq!(q.peek_lru().unwrap().id, ObjectId(2));
    }

    #[test]
    fn evict_from_lru_end() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 100, 1);
        let v = q.evict_lru().unwrap();
        assert_eq!(v.id, ObjectId(1));
        assert_eq!(q.used_bytes(), 100);
        assert!(!q.contains(ObjectId(1)));
    }

    #[test]
    fn record_hit_updates_stats_without_moving() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 100, 1);
        q.record_hit(ObjectId(1), 5);
        assert_eq!(ids(&q), vec![2, 1]);
        let m = q.get(ObjectId(1)).unwrap();
        assert_eq!(m.hits, 1);
        assert_eq!(m.last_access, 5);
    }

    #[test]
    fn promote_and_demote() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 100, 1);
        q.insert_mru(ObjectId(3), 100, 2);
        // order: 3 2 1
        q.promote_to_mru(ObjectId(1));
        assert_eq!(ids(&q), vec![1, 3, 2]);
        q.demote_to_lru(ObjectId(1));
        assert_eq!(ids(&q), vec![3, 2, 1]);
        q.promote_one(ObjectId(1));
        assert_eq!(ids(&q), vec![3, 1, 2]);
    }

    #[test]
    fn remove_does_not_touch_others() {
        let mut q = LruQueue::new(1000);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 150, 1);
        let m = q.remove(ObjectId(1)).unwrap();
        assert_eq!(m.size, 100);
        assert_eq!(q.used_bytes(), 150);
        assert_eq!(q.remove(ObjectId(1)), None);
    }

    #[test]
    fn eviction_loop_frees_space() {
        let mut q = LruQueue::new(300);
        q.insert_mru(ObjectId(1), 100, 0);
        q.insert_mru(ObjectId(2), 100, 1);
        q.insert_mru(ObjectId(3), 100, 2);
        // Need 150 bytes for a new object.
        let mut evicted = Vec::new();
        while q.needs_eviction_for(150) {
            evicted.push(q.evict_lru().unwrap().id.0);
        }
        assert_eq!(evicted, vec![1, 2]);
        q.insert_mru(ObjectId(4), 150, 3);
        assert_eq!(q.used_bytes(), 250);
    }

    #[test]
    fn admissibility() {
        let q = LruQueue::new(100);
        assert!(q.admissible(100));
        assert!(!q.admissible(101));
    }

    #[test]
    fn clear_empties() {
        let mut q = LruQueue::new(100);
        q.insert_mru(ObjectId(1), 50, 0);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
        assert!(!q.contains(ObjectId(1)));
    }

    #[test]
    fn record_promotion_sets_insertion_end() {
        let mut q = LruQueue::new(1000);
        let h = q.insert_lru(ObjectId(1), 100, 0);
        assert!(!q.get_at(h).inserted_at_mru);
        q.record_promotion_at(h, true, 7);
        let m = q.get_at(h);
        assert!(m.inserted_at_mru);
        assert_eq!(m.hits, 1);
        assert_eq!(m.last_access, 7);
        q.record_promotion_at(h, false, 9);
        let m = q.get_at(h);
        assert!(!m.inserted_at_mru);
        assert_eq!(m.hits, 2);
    }

    #[test]
    fn tag_set_through_handle() {
        let mut q = LruQueue::new(1000);
        let h = q.insert_mru(ObjectId(1), 100, 0);
        q.set_tag_at(h, 42);
        assert_eq!(q.get(ObjectId(1)).unwrap().tag, 42);
        // Tag writes must not disturb the hot half.
        assert!(q.get_at(h).inserted_at_mru);
        assert_eq!(q.hits_at(h), 0);
    }

    #[test]
    fn meta_roundtrips_through_reinsert() {
        let mut q = LruQueue::new(1000);
        let h = q.insert_mru(ObjectId(1), 100, 3);
        q.record_hit_at(h, 8);
        q.set_tag_at(h, 99);
        let m = q.remove(ObjectId(1)).unwrap();
        q.insert_meta_lru(m);
        let m2 = q.get(ObjectId(1)).unwrap();
        assert_eq!(m2, m);
        q.audit().unwrap();
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_handle_rejected_after_eviction() {
        let mut q = LruQueue::new(1000);
        let h = q.insert_mru(ObjectId(1), 100, 0);
        q.evict_lru();
        q.insert_mru(ObjectId(2), 100, 1); // reuses the slot
        let _ = q.get_at(h);
    }

    #[test]
    fn memory_accounting_includes_index() {
        let mut q = LruQueue::new(u64::MAX);
        for i in 0..1000 {
            q.insert_mru(ObjectId(i), 1, i);
        }
        let per_entry = q.memory_bytes() as f64 / 1000.0;
        // 24 B hot + 32 B cold + ≤ 2×16 B index (load ≥ 1/2 after growth),
        // times vec over-allocation; the point is the bound is honest and
        // far below the old 64 B node + 24 B map-slot accounting would
        // suggest once hashmap overhead was truly counted.
        assert!(per_entry >= 56.0, "per-entry {per_entry} undercounts");
        assert!(per_entry <= 160.0, "per-entry {per_entry} is bloated");
        q.audit().unwrap();
    }
}
