//! Deterministic fault-injection registry (failpoints).
//!
//! Compiled only under the `fault-injection` feature; production builds
//! carry zero overhead because every call site is `#[cfg]`-gated. Tests
//! arm named *sites* with [`FaultRule`]s and the instrumented code asks
//! [`check`] what should happen at `(site, key)` — typically a sweep job
//! index or a trace chunk index. All rules are deterministic: explicit key
//! sets, per-key attempt counters, or a seeded hash for probabilistic
//! plans, so a failing schedule replays bit-identically.
//!
//! The registry is process-global (worker threads must observe the plan
//! armed by the test thread). Tests that arm sites must serialise on a
//! lock of their own and [`clear`] the registry when done.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// What a failpoint site should do for one `(site, key)` evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with this message (exercises panic-isolation paths).
    Panic(String),
    /// Return a site-interpreted error with this message.
    Error(String),
    /// Deliver a short read: the site should truncate its buffer to this
    /// many bytes before decoding.
    ShortRead(usize),
    /// Flip one bit of the byte at this offset in the site's buffer.
    CorruptByte(usize),
}

/// When a rule fires at an armed site.
#[derive(Debug, Clone)]
pub enum FaultRule {
    /// Fire on exactly these keys, every time they are evaluated.
    OnKeys(Vec<u64>, FaultAction),
    /// Fire on the first `n` evaluations of each key, then stop — models a
    /// transient failure that a bounded retry should absorb.
    FirstAttempts(u32, FaultAction),
    /// Fire on keys whose seeded hash lands under `millis`/1000 —
    /// reproducible "random" fault plans without wall-clock entropy.
    Seeded {
        /// Plan seed; the same seed always selects the same keys.
        seed: u64,
        /// Firing probability in thousandths (0..=1000).
        millis: u32,
        /// Action taken when selected.
        action: FaultAction,
    },
}

#[derive(Default)]
struct SiteState {
    rule: Option<FaultRule>,
    /// Evaluations so far per key (drives [`FaultRule::FirstAttempts`]).
    seen: HashMap<u64, u32>,
    /// Total number of times this site fired.
    fired: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arm `site` with `rule`, replacing any previous rule and resetting its
/// counters.
pub fn arm(site: &str, rule: FaultRule) {
    let mut reg = registry().lock().unwrap();
    let state = reg.entry(site.to_string()).or_default();
    *state = SiteState {
        rule: Some(rule),
        ..SiteState::default()
    };
}

/// Disarm one site.
pub fn disarm(site: &str) {
    registry().lock().unwrap().remove(site);
}

/// Disarm every site (call at the end of each fault-injection test).
pub fn clear() {
    registry().lock().unwrap().clear();
}

/// Times `site` has fired since it was armed, 0 if not armed.
pub fn fired(site: &str) -> u64 {
    registry().lock().unwrap().get(site).map_or(0, |s| s.fired)
}

/// SplitMix64-style mix for the seeded rule: key selection depends only on
/// `(seed, key)`, never on evaluation order or thread timing.
fn mix(seed: u64, key: u64) -> u64 {
    let mut z = seed ^ key.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Evaluate `site` at `key`: `None` means proceed normally, `Some(action)`
/// means the site must enact the injected fault. Each evaluation advances
/// the per-key attempt counter, so retry loops naturally walk past a
/// [`FaultRule::FirstAttempts`] rule.
pub fn check(site: &str, key: u64) -> Option<FaultAction> {
    let mut reg = registry().lock().unwrap();
    let state = reg.get_mut(site)?;
    let rule = state.rule.as_ref()?;
    let attempt = state.seen.entry(key).or_insert(0);
    *attempt += 1;
    let action = match rule {
        FaultRule::OnKeys(keys, action) if keys.contains(&key) => Some(action.clone()),
        FaultRule::FirstAttempts(n, action) if *attempt <= *n => Some(action.clone()),
        FaultRule::Seeded {
            seed,
            millis,
            action,
        } if mix(*seed, key) % 1000 < u64::from(*millis) => Some(action.clone()),
        _ => None,
    };
    if action.is_some() {
        state.fired += 1;
    }
    action
}

/// Evaluate `site` at `key` and panic if the armed action is
/// [`FaultAction::Panic`]; other actions are ignored (sites that can only
/// panic use this shorthand).
pub fn maybe_panic(site: &str, key: u64) {
    if let Some(FaultAction::Panic(msg)) = check(site, key) {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; serialise the tests in this module.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn on_keys_fires_only_on_listed_keys() {
        let _g = LOCK.lock().unwrap();
        clear();
        arm(
            "t.keys",
            FaultRule::OnKeys(vec![2, 5], FaultAction::Panic("boom".into())),
        );
        assert_eq!(check("t.keys", 1), None);
        assert_eq!(check("t.keys", 2), Some(FaultAction::Panic("boom".into())));
        assert_eq!(check("t.keys", 5), Some(FaultAction::Panic("boom".into())));
        assert_eq!(fired("t.keys"), 2);
        clear();
    }

    #[test]
    fn first_attempts_is_transient_per_key() {
        let _g = LOCK.lock().unwrap();
        clear();
        arm(
            "t.transient",
            FaultRule::FirstAttempts(2, FaultAction::Error("flaky".into())),
        );
        for key in [7u64, 9] {
            assert!(check("t.transient", key).is_some());
            assert!(check("t.transient", key).is_some());
            assert_eq!(check("t.transient", key), None, "third attempt clean");
        }
        clear();
    }

    #[test]
    fn seeded_rule_is_deterministic() {
        let _g = LOCK.lock().unwrap();
        clear();
        let plan = |seed: u64| -> Vec<u64> {
            arm(
                "t.seeded",
                FaultRule::Seeded {
                    seed,
                    millis: 200,
                    action: FaultAction::ShortRead(3),
                },
            );
            (0..100)
                .filter(|&k| check("t.seeded", k).is_some())
                .collect()
        };
        let a = plan(42);
        let b = plan(42);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < 100, "~20% of keys selected");
        clear();
    }

    #[test]
    fn unarmed_sites_are_silent() {
        let _g = LOCK.lock().unwrap();
        assert_eq!(check("t.nothing", 0), None);
        maybe_panic("t.nothing", 0);
    }
}
