//! Fx-style hashing for integer-keyed metadata tables.
//!
//! Cache policies index object metadata by [`crate::ObjectId`] on every
//! request; SipHash's HashDoS resistance buys nothing on synthetic ids while
//! costing a measurable fraction of simulation time. This module provides
//! the rustc Fx hash (a multiply-xor construction) plus map/set aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: fast, low-quality, excellent for integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` — used for leader-set selection (DIP), signature
/// tables (SHiP) and sharding, where we need a cheap stateless mix.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    // SplitMix64 finaliser.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hasher_differentiates_close_keys() {
        use std::hash::Hash;
        let h = |k: u64| {
            let mut hasher = FxHasher::default();
            k.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
        assert_ne!(h(u64::MAX), h(u64::MAX - 1));
    }

    #[test]
    fn write_bytes_tail_handled() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_spreads_sequential_ids() {
        let buckets = 64u64;
        let mut counts = vec![0u32; buckets as usize];
        for i in 0..64_000u64 {
            counts[(mix64(i) % buckets) as usize] += 1;
        }
        let expected = 1000;
        for &c in &counts {
            assert!((c as i64 - expected).abs() < 200, "bucket {c}");
        }
    }
}
