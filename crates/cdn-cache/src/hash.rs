//! Fx-style hashing for integer-keyed metadata tables.
//!
//! Cache policies index object metadata by [`crate::ObjectId`] on every
//! request; SipHash's HashDoS resistance buys nothing on synthetic ids while
//! costing a measurable fraction of simulation time. This module provides
//! the rustc Fx hash (a multiply-xor construction) plus map/set aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hasher: fast, low-quality, excellent for integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` — used for leader-set selection (DIP), signature
/// tables (SHiP) and sharding, where we need a cheap stateless mix.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    // SplitMix64 finaliser.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// 2^64 / φ — the fibonacci-hashing multiplier. One `wrapping_mul` by
/// this constant spreads sequential keys across the *high* bits, which is
/// exactly what multiply-shift range reduction consumes.
pub const FIB_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministic key→shard mapping shared by the trace partitioner and
/// (later) the sharded daemon: [`mix64`] the key, then multiply-shift
/// the hash onto `[0, shards)`.
///
/// Properties the sharded replay engine depends on:
/// - **stateless + deterministic**: the same key always lands on the same
///   shard for a given shard count, on every thread and every run;
/// - **no power-of-two requirement**: multiply-shift range reduction works
///   for any `shards ≥ 1` without a division on the hot path;
/// - **uniform**: sequential object ids (the generator's common case)
///   spread evenly because the mix randomises the high bits;
/// - **independent of the index hash**: the shard function must NOT be the
///   fibonacci product the fused index derives home slots from. Sharding
///   on the top bits of `key · FIB_MUL` hands each shard exactly the keys
///   whose home slots fall in one contiguous `1/shards` slice of its
///   index — one table-spanning probe cluster and an ~18× per-request
///   slowdown (measured; see DESIGN.md §15). [`mix64`] is a full-avalanche
///   finaliser with no bit in common with the fibonacci multiply, so a
///   shard's keys still cover its index's whole bucket range.
///
/// # Panics
/// If `shards` is zero.
#[inline]
pub fn key_shard(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "key_shard: shard count must be >= 1");
    let h = mix64(key);
    // Multiply-shift: (h / 2^64) * shards, computed in 128-bit.
    ((h as u128 * shards as u128) >> 64) as usize
}

/// Rendezvous (highest-random-weight) weight of `key` on `node`.
///
/// Shared seam between the `tdc` origin-cluster sibling picker and the
/// `cdnd` shard failover router: every candidate node scores
/// `(key, node)` and the highest weight wins, so one node's death
/// remaps only that node's keys and its revival restores exactly the
/// original assignment. The per-node salt is `(node + 1) · FIB_MUL` so
/// node 0 does not degenerate into the identity salt.
#[inline]
pub fn rendezvous_weight(key: u64, node: usize) -> u64 {
    mix64(key ^ (node as u64 + 1).wrapping_mul(FIB_MUL))
}

/// Deterministic failover route for `key` over `shards` shards, given a
/// predicate marking shards as down.
///
/// Order tried: the [`key_shard`] primary first, then every other shard
/// by descending [`rendezvous_weight`] (first-seen, i.e. lowest index,
/// wins a weight tie, keeping the order total). Returns the first shard
/// the predicate reports up, or `None` when every shard is down. Pure in
/// `(key, shards, down-set)`, which is what lets the daemon's router and
/// the serial oracle replay identical decisions.
///
/// # Panics
/// If `shards` is zero (via [`key_shard`]).
pub fn route_with_failover(
    key: u64,
    shards: usize,
    is_down: impl Fn(usize) -> bool,
) -> Option<usize> {
    let primary = key_shard(key, shards);
    if !is_down(primary) {
        return Some(primary);
    }
    let mut best: Option<(u64, usize)> = None;
    for node in 0..shards {
        if node == primary || is_down(node) {
            continue;
        }
        let w = rendezvous_weight(key, node);
        if best.is_none_or(|(bw, _)| w > bw) {
            best = Some((w, node));
        }
    }
    best.map(|(_, node)| node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hasher_differentiates_close_keys() {
        use std::hash::Hash;
        let h = |k: u64| {
            let mut hasher = FxHasher::default();
            k.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
        assert_ne!(h(u64::MAX), h(u64::MAX - 1));
    }

    #[test]
    fn write_bytes_tail_handled() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn key_shard_is_deterministic_and_in_range() {
        for shards in 1..=9usize {
            for key in [0u64, 1, 2, 1000, u64::MAX, u64::MAX / 2] {
                let s = key_shard(key, shards);
                assert!(s < shards, "key {key} -> shard {s} of {shards}");
                assert_eq!(s, key_shard(key, shards), "must be stable");
            }
        }
    }

    #[test]
    fn key_shard_spreads_sequential_ids() {
        // Sequential ids are the trace generator's id space; fibonacci
        // hashing must not funnel them into a few shards.
        for shards in [2usize, 3, 4, 7, 8] {
            let mut counts = vec![0u32; shards];
            let n = 80_000u64;
            for key in 0..n {
                counts[key_shard(key, shards)] += 1;
            }
            let expected = n as i64 / shards as i64;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    (c as i64 - expected).abs() < expected / 5,
                    "shard {s}/{shards}: {c} vs expected {expected}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn key_shard_rejects_zero_shards() {
        key_shard(1, 0);
    }

    #[test]
    fn shard_keys_cover_index_home_slots() {
        // Regression: one shard's keys must still spread over the whole
        // fibonacci home-slot range the fused index probes. When sharding
        // reused the index's own hash, shard 0 of 4 owned exactly the keys
        // homing into the first quarter of every table — a table-spanning
        // probe cluster and an ~18x replay slowdown.
        let buckets = 1u64 << 10;
        let mut seen = vec![false; buckets as usize];
        for key in 0..200_000u64 {
            if key_shard(key, 4) == 0 {
                let home = key.wrapping_mul(FIB_MUL) >> (64 - 10);
                seen[home as usize] = true;
            }
        }
        let covered = seen.iter().filter(|&&b| b).count() as u64;
        assert!(
            covered > buckets * 9 / 10,
            "shard 0 keys cover only {covered}/{buckets} home slots"
        );
    }

    #[test]
    fn route_prefers_primary_when_up() {
        for key in [0u64, 1, 7, 1000, u64::MAX] {
            for shards in [1usize, 2, 4, 7] {
                assert_eq!(
                    route_with_failover(key, shards, |_| false),
                    Some(key_shard(key, shards))
                );
            }
        }
    }

    #[test]
    fn route_failover_is_consistent_and_minimal() {
        // A downed shard remaps only its own keys; revival restores the
        // original assignment exactly (rendezvous consistency).
        let shards = 4usize;
        for key in 0..5000u64 {
            let primary = key_shard(key, shards);
            let down = (primary + 1) % shards; // some *other* shard down
            let routed = route_with_failover(key, shards, |s| s == down).unwrap();
            assert_eq!(routed, primary, "non-primary death must not move key {key}");

            let failover = route_with_failover(key, shards, |s| s == primary).unwrap();
            assert_ne!(failover, primary);
            // Deterministic: same decision every time.
            assert_eq!(
                failover,
                route_with_failover(key, shards, |s| s == primary).unwrap()
            );
        }
    }

    #[test]
    fn route_walks_rendezvous_order_past_dead_secondary() {
        let shards = 4usize;
        for key in 0..2000u64 {
            let primary = key_shard(key, shards);
            let second = route_with_failover(key, shards, |s| s == primary).unwrap();
            let third = route_with_failover(key, shards, |s| s == primary || s == second).unwrap();
            assert!(third != primary && third != second);
            // third must be the best remaining rendezvous weight.
            for node in 0..shards {
                if node != primary && node != second && node != third {
                    assert!(
                        rendezvous_weight(key, third) >= rendezvous_weight(key, node),
                        "key {key}: rendezvous order violated"
                    );
                }
            }
        }
    }

    #[test]
    fn route_none_when_all_down() {
        assert_eq!(route_with_failover(42, 4, |_| true), None);
    }

    #[test]
    fn route_spreads_failover_load() {
        // Keys homed on a dead shard must spread across survivors, not
        // funnel into one (that is the point of rendezvous vs key+1).
        let shards = 4usize;
        let mut counts = vec![0u32; shards];
        let mut total = 0u32;
        for key in 0..40_000u64 {
            if key_shard(key, shards) == 0 {
                counts[route_with_failover(key, shards, |s| s == 0).unwrap()] += 1;
                total += 1;
            }
        }
        assert_eq!(counts[0], 0);
        let expected = (total / 3) as i64;
        for (s, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (c as i64 - expected).abs() < expected / 4,
                "survivor {s}: {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn mix64_spreads_sequential_ids() {
        let buckets = 64u64;
        let mut counts = vec![0u32; buckets as usize];
        for i in 0..64_000u64 {
            counts[(mix64(i) % buckets) as usize] += 1;
        }
        let expected = 1000;
        for &c in &counts {
            assert!((c as i64 - expected).abs() < 200, "bucket {c}");
        }
    }
}
