//! FIFO ghost (history) lists of evicted-object metadata.
//!
//! The paper keeps two such lists: `H_m` for victims whose residency began
//! at the MRU position and `H_l` for victims inserted at the LRU position,
//! each logically sized at half the real cache. Only metadata (key + size)
//! is stored, so the memory overhead is small — this mirrors the TDC
//! deployment where shadow caches live in RAM next to the inode index.
//!
//! The same structure serves as the ghost list of DIP's set-dueling
//! monitors, ARC's B1/B2, and LeCaR/CACHEUS history queues.

use crate::index::FusedIndex;
use crate::list::{Handle, LinkedSlab};
use crate::object::{ObjectId, Tick};

/// Metadata remembered about an evicted object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GhostEntry {
    /// Object identity.
    pub id: ObjectId,
    /// Size at eviction time (counts against the list's byte budget).
    pub size: u64,
    /// Tick at which the object was evicted from the real cache.
    pub evicted_tick: Tick,
    /// Policy-private tag carried over from the residency.
    pub tag: u64,
}

/// Byte-budgeted FIFO list of [`GhostEntry`]s with O(1) membership tests.
///
/// `ADD` inserts at the head; when the budget is exceeded the oldest entries
/// fall off the tail (Algorithm 1, lines 34-38).
#[derive(Debug, Clone)]
pub struct GhostList {
    list: LinkedSlab<GhostEntry>,
    map: FusedIndex,
    capacity_bytes: u64,
    used: u64,
}

impl GhostList {
    /// Ghost list with the given byte budget.
    pub fn new(capacity_bytes: u64) -> Self {
        GhostList {
            list: LinkedSlab::new(),
            map: FusedIndex::new(),
            capacity_bytes,
            used: 0,
        }
    }

    /// Byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes of (logical) object sizes currently tracked.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// True if `id` is tracked.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.map.contains(id.0)
    }

    /// Shared access to a tracked entry.
    pub fn get(&self, id: ObjectId) -> Option<&GhostEntry> {
        let h = Handle::unpack(self.map.get(id.0)?);
        Some(self.list.get(h))
    }

    /// Record an eviction (the paper's `ADD`): insert at the head, dropping
    /// tail entries until the new entry fits. If the object is already
    /// tracked, its entry is refreshed and moved to the head.
    ///
    /// Objects larger than the whole budget are not tracked at all (they
    /// could never be re-found anyway without evicting everything).
    pub fn add(&mut self, entry: GhostEntry) {
        if entry.size > self.capacity_bytes {
            // Still forget any stale record of the same id.
            self.delete(entry.id);
            return;
        }
        // Account the new entry's bytes only after tail entries have been
        // dropped to make room, so the ledger never transiently exceeds
        // `u64` range even with budgets near `u64::MAX` (the tail loop can
        // never pop the new entry itself: it sits at the head, and a
        // single-entry list always fits because `size <= capacity`).
        if let Some(h) = self.map.get(entry.id.0).map(Handle::unpack) {
            let old = self.list.get(h).size;
            self.used -= old;
            *self.list.get_mut(h) = entry;
            self.list.move_to_front(h);
        } else {
            let h = self.list.push_front(entry);
            self.map.insert(entry.id.0, h.pack());
        }
        while self.used.saturating_add(entry.size) > self.capacity_bytes {
            let victim = self.list.pop_back().expect("over budget implies nonempty");
            self.map.remove(victim.id.0);
            self.used -= victim.size;
        }
        self.used += entry.size;
    }

    /// Forget an object (the paper's `DELETE`), returning its entry if it
    /// was tracked.
    pub fn delete(&mut self, id: ObjectId) -> Option<GhostEntry> {
        let h = Handle::unpack(self.map.remove(id.0)?);
        let e = self.list.remove(h);
        self.used -= e.size;
        Some(e)
    }

    /// Iterate entries newest→oldest.
    pub fn iter(&self) -> impl Iterator<Item = &GhostEntry> {
        self.list.iter()
    }

    /// True metadata footprint in bytes: structure-of-arrays slab plus the
    /// fused index's bucket array.
    pub fn memory_bytes(&self) -> usize {
        self.list.memory_bytes() + self.map.memory_bytes()
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.list.clear();
        self.map.clear();
        self.used = 0;
    }

    /// Structural invariant walk (O(n)): list consistency (via
    /// [`LinkedSlab::audit`]), ledger == Σ tracked sizes (summed in u128),
    /// ledger within the byte budget, and map/list agreement. Returns a
    /// description of the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        self.list.audit()?;
        let mut sum: u128 = 0;
        let mut n = 0usize;
        for e in self.list.iter() {
            let h = self
                .map
                .get(e.id.0)
                .map(Handle::unpack)
                .ok_or_else(|| format!("ghost: listed entry {} missing from map", e.id.0))?;
            if self.list.get(h).id != e.id {
                return Err(format!(
                    "ghost: map handle for {} resolves elsewhere",
                    e.id.0
                ));
            }
            sum += e.size as u128;
            n += 1;
        }
        self.map.audit().map_err(|e| format!("ghost: {e}"))?;
        if n != self.map.len() {
            return Err(format!(
                "ghost: list has {n} entries, map has {}",
                self.map.len()
            ));
        }
        if sum != self.used as u128 {
            return Err(format!("ghost: ledger used={} but Σsizes={sum}", self.used));
        }
        if self.used > self.capacity_bytes {
            return Err(format!(
                "ghost: used={} exceeds budget={}",
                self.used, self.capacity_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, size: u64, tick: Tick) -> GhostEntry {
        GhostEntry {
            id: ObjectId(id),
            size,
            evicted_tick: tick,
            tag: 0,
        }
    }

    #[test]
    fn add_and_contains() {
        let mut g = GhostList::new(1000);
        g.add(entry(1, 100, 0));
        assert!(g.contains(ObjectId(1)));
        assert_eq!(g.used_bytes(), 100);
        assert_eq!(g.get(ObjectId(1)).unwrap().size, 100);
    }

    #[test]
    fn budget_drops_oldest() {
        let mut g = GhostList::new(250);
        g.add(entry(1, 100, 0));
        g.add(entry(2, 100, 1));
        g.add(entry(3, 100, 2)); // 300 > 250: drop oldest (1)
        assert!(!g.contains(ObjectId(1)));
        assert!(g.contains(ObjectId(2)));
        assert!(g.contains(ObjectId(3)));
        assert_eq!(g.used_bytes(), 200);
    }

    #[test]
    fn delete_frees_budget() {
        let mut g = GhostList::new(200);
        g.add(entry(1, 100, 0));
        g.add(entry(2, 100, 1));
        let e = g.delete(ObjectId(1)).unwrap();
        assert_eq!(e.evicted_tick, 0);
        assert_eq!(g.used_bytes(), 100);
        assert_eq!(g.delete(ObjectId(1)), None);
        // Freed budget admits a new entry without dropping id 2.
        g.add(entry(3, 100, 2));
        assert!(g.contains(ObjectId(2)));
    }

    #[test]
    fn re_add_refreshes_position() {
        let mut g = GhostList::new(250);
        g.add(entry(1, 100, 0));
        g.add(entry(2, 100, 1));
        g.add(entry(1, 100, 2)); // refresh id 1 to the head
        assert_eq!(g.len(), 2);
        assert_eq!(g.used_bytes(), 200);
        g.add(entry(3, 100, 3)); // over budget: the oldest is now id 2
        assert!(g.contains(ObjectId(1)));
        assert!(!g.contains(ObjectId(2)));
    }

    #[test]
    fn oversized_entry_not_tracked() {
        let mut g = GhostList::new(100);
        g.add(entry(1, 500, 0));
        assert!(!g.contains(ObjectId(1)));
        assert_eq!(g.used_bytes(), 0);
    }

    #[test]
    fn oversized_re_add_forgets_previous() {
        let mut g = GhostList::new(100);
        g.add(entry(1, 50, 0));
        g.add(entry(1, 500, 1)); // grew beyond budget: must forget
        assert!(!g.contains(ObjectId(1)));
        assert_eq!(g.used_bytes(), 0);
    }

    #[test]
    fn fifo_order_iter() {
        let mut g = GhostList::new(1000);
        for i in 0..5 {
            g.add(entry(i, 10, i));
        }
        let order: Vec<u64> = g.iter().map(|e| e.id.0).collect();
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
    }
}
