//! Miss-ratio tracking and interval statistics.
//!
//! The paper reports object miss ratios (its "miss ratio" / "BTO-ratio"),
//! and SCIP's learning-rate update consumes the average hit rate `Π_t`
//! measured over update intervals. This module provides both a cumulative
//! tracker and fixed-width interval snapshots suitable for time-series
//! figures (Fig. 6) and for Algorithm 2.

use crate::object::Tick;

/// Cumulative and windowed hit/miss statistics.
#[derive(Debug, Clone, Default)]
pub struct MissRatio {
    hits: u64,
    misses: u64,
    hit_bytes: u64,
    miss_bytes: u64,
    window_hits: u64,
    window_total: u64,
}

impl MissRatio {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a hit of `size` bytes.
    #[inline]
    pub fn record_hit(&mut self, size: u64) {
        self.hits += 1;
        self.hit_bytes += size;
        self.window_hits += 1;
        self.window_total += 1;
    }

    /// Record a miss of `size` bytes.
    #[inline]
    pub fn record_miss(&mut self, size: u64) {
        self.misses += 1;
        self.miss_bytes += size;
        self.window_total += 1;
    }

    /// Total requests seen.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Object miss ratio over the whole run; 0 when no requests were seen.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }

    /// Object hit ratio over the whole run.
    pub fn hit_ratio(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Byte miss ratio (fraction of requested bytes that missed).
    pub fn byte_miss_ratio(&self) -> f64 {
        let b = self.hit_bytes + self.miss_bytes;
        if b == 0 {
            0.0
        } else {
            self.miss_bytes as f64 / b as f64
        }
    }

    /// Bytes that missed (back-to-origin traffic).
    pub fn miss_bytes(&self) -> u64 {
        self.miss_bytes
    }

    /// Hit rate of the current window (`Π` of Algorithm 2), then reset the
    /// window. Returns 0 for an empty window.
    pub fn take_window_hit_rate(&mut self) -> f64 {
        let rate = if self.window_total == 0 {
            0.0
        } else {
            self.window_hits as f64 / self.window_total as f64
        };
        self.window_hits = 0;
        self.window_total = 0;
        rate
    }

    /// Hit rate of the current window without resetting.
    pub fn window_hit_rate(&self) -> f64 {
        if self.window_total == 0 {
            0.0
        } else {
            self.window_hits as f64 / self.window_total as f64
        }
    }
}

/// One fixed-width interval's statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalStats {
    /// Tick at the end of the interval (exclusive).
    pub end_tick: Tick,
    /// Requests in the interval.
    pub requests: u64,
    /// Misses in the interval.
    pub misses: u64,
    /// Bytes missed in the interval (BTO traffic).
    pub miss_bytes: u64,
    /// Bytes requested in the interval.
    pub total_bytes: u64,
}

impl IntervalStats {
    /// Miss ratio within this interval.
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }
}

/// Records per-request outcomes and cuts them into interval snapshots for
/// time-series figures.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    interval: u64,
    totals: MissRatio,
    cur_requests: u64,
    cur_misses: u64,
    cur_miss_bytes: u64,
    cur_total_bytes: u64,
    next_cut: Tick,
    snapshots: Vec<IntervalStats>,
}

impl MetricsRecorder {
    /// Recorder that cuts a snapshot every `interval` requests.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        MetricsRecorder {
            interval,
            totals: MissRatio::new(),
            cur_requests: 0,
            cur_misses: 0,
            cur_miss_bytes: 0,
            cur_total_bytes: 0,
            next_cut: interval,
            snapshots: Vec::new(),
        }
    }

    /// Record a request outcome. `tick` must be non-decreasing.
    pub fn record(&mut self, tick: Tick, size: u64, hit: bool) {
        if hit {
            self.totals.record_hit(size);
        } else {
            self.totals.record_miss(size);
            self.cur_misses += 1;
            self.cur_miss_bytes += size;
        }
        self.cur_requests += 1;
        self.cur_total_bytes += size;
        if self.totals.requests() >= self.next_cut {
            self.cut(tick + 1);
        }
    }

    fn cut(&mut self, end_tick: Tick) {
        self.snapshots.push(IntervalStats {
            end_tick,
            requests: self.cur_requests,
            misses: self.cur_misses,
            miss_bytes: self.cur_miss_bytes,
            total_bytes: self.cur_total_bytes,
        });
        self.cur_requests = 0;
        self.cur_misses = 0;
        self.cur_miss_bytes = 0;
        self.cur_total_bytes = 0;
        self.next_cut += self.interval;
    }

    /// Flush a trailing partial interval (call once at end of run).
    pub fn finish(&mut self, end_tick: Tick) {
        if self.cur_requests > 0 {
            self.cut(end_tick);
        }
    }

    /// Cumulative statistics.
    pub fn totals(&self) -> &MissRatio {
        &self.totals
    }

    /// Interval snapshots cut so far.
    pub fn snapshots(&self) -> &[IntervalStats] {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_basic() {
        let mut m = MissRatio::new();
        m.record_hit(100);
        m.record_miss(300);
        m.record_miss(100);
        m.record_hit(100);
        assert_eq!(m.requests(), 4);
        assert!((m.miss_ratio() - 0.5).abs() < 1e-12);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
        assert!((m.byte_miss_ratio() - 400.0 / 600.0).abs() < 1e-12);
        assert_eq!(m.miss_bytes(), 400);
    }

    #[test]
    fn empty_tracker_is_zero() {
        let m = MissRatio::new();
        assert_eq!(m.miss_ratio(), 0.0);
        assert_eq!(m.byte_miss_ratio(), 0.0);
    }

    #[test]
    fn window_resets() {
        let mut m = MissRatio::new();
        m.record_hit(1);
        m.record_miss(1);
        assert!((m.window_hit_rate() - 0.5).abs() < 1e-12);
        assert!((m.take_window_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.take_window_hit_rate(), 0.0);
        m.record_hit(1);
        assert!((m.take_window_hit_rate() - 1.0).abs() < 1e-12);
        // Cumulative stats unaffected by window resets.
        assert_eq!(m.requests(), 3);
    }

    #[test]
    fn recorder_cuts_intervals() {
        let mut r = MetricsRecorder::new(2);
        r.record(0, 10, false);
        r.record(1, 10, true);
        r.record(2, 10, false);
        r.finish(3);
        let s = r.snapshots();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].requests, 2);
        assert_eq!(s[0].misses, 1);
        assert!((s[0].miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s[1].requests, 1);
        assert_eq!(s[1].miss_bytes, 10);
        assert!((r.totals().miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn finish_without_partial_is_noop() {
        let mut r = MetricsRecorder::new(2);
        r.record(0, 1, true);
        r.record(1, 1, true);
        r.finish(2);
        assert_eq!(r.snapshots().len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = MetricsRecorder::new(0);
    }
}
