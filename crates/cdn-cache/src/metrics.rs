//! Miss-ratio tracking and interval statistics.
//!
//! The paper reports object miss ratios (its "miss ratio" / "BTO-ratio"),
//! and SCIP's learning-rate update consumes the average hit rate `Π_t`
//! measured over update intervals. This module provides both a cumulative
//! tracker and fixed-width interval snapshots suitable for time-series
//! figures (Fig. 6) and for Algorithm 2.

use crate::object::Tick;

/// Cumulative and windowed hit/miss statistics.
#[derive(Debug, Clone, Default)]
pub struct MissRatio {
    hits: u64,
    misses: u64,
    hit_bytes: u64,
    miss_bytes: u64,
    window_hits: u64,
    window_total: u64,
}

impl MissRatio {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a hit of `size` bytes. The byte ledger saturates: an
    /// adversarial trace of near-`u64::MAX` objects must skew the byte
    /// ratio, not wrap (or abort) the counter.
    #[inline]
    pub fn record_hit(&mut self, size: u64) {
        self.hits += 1;
        self.hit_bytes = self.hit_bytes.saturating_add(size);
        self.window_hits += 1;
        self.window_total += 1;
    }

    /// Record a miss of `size` bytes (byte ledger saturating, as above).
    #[inline]
    pub fn record_miss(&mut self, size: u64) {
        self.misses += 1;
        self.miss_bytes = self.miss_bytes.saturating_add(size);
        self.window_total += 1;
    }

    /// Total requests seen.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Object miss ratio over the whole run; 0 when no requests were seen.
    pub fn miss_ratio(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }

    /// Object hit ratio over the whole run.
    pub fn hit_ratio(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Byte miss ratio (fraction of requested bytes that missed).
    pub fn byte_miss_ratio(&self) -> f64 {
        let b = self.hit_bytes.saturating_add(self.miss_bytes);
        if b == 0 {
            0.0
        } else {
            self.miss_bytes as f64 / b as f64
        }
    }

    /// Bytes that missed (back-to-origin traffic).
    pub fn miss_bytes(&self) -> u64 {
        self.miss_bytes
    }

    /// Bytes served from cache.
    pub fn hit_bytes(&self) -> u64 {
        self.hit_bytes
    }

    /// Fold another tracker's cumulative counters into this one — the
    /// aggregation step of sharded replay, where each shard owns a private
    /// tracker and the merged ledgers must equal a single tracker fed every
    /// request. Saturating, like the recording paths. Window state (`Π_t`)
    /// is deliberately not merged: it is per-policy-instance learning
    /// state, meaningless across shards.
    pub fn absorb(&mut self, other: &MissRatio) {
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.hit_bytes = self.hit_bytes.saturating_add(other.hit_bytes);
        self.miss_bytes = self.miss_bytes.saturating_add(other.miss_bytes);
    }

    /// Hit rate of the current window (`Π` of Algorithm 2), then reset the
    /// window. Returns 0 for an empty window.
    pub fn take_window_hit_rate(&mut self) -> f64 {
        let rate = if self.window_total == 0 {
            0.0
        } else {
            self.window_hits as f64 / self.window_total as f64
        };
        self.window_hits = 0;
        self.window_total = 0;
        rate
    }

    /// Hit rate of the current window without resetting.
    pub fn window_hit_rate(&self) -> f64 {
        if self.window_total == 0 {
            0.0
        } else {
            self.window_hits as f64 / self.window_total as f64
        }
    }
}

/// Fixed-bucket latency histogram with deterministic percentile readout.
///
/// Buckets are log-spaced (8 per octave) from 0.1 ms up to ~1.7 h, which
/// keeps the relative quantile error under ~9 % across the whole range
/// while the memory footprint stays a few hundred bytes. Everything is
/// integer counting over a fixed layout, so two runs that record the same
/// latency sequence produce bit-identical percentiles — the property the
/// chaos experiments rely on for byte-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ms: f64,
    max_ms: f64,
}

impl LatencyHistogram {
    /// Smallest bucket upper bound, ms.
    const MIN_MS: f64 = 0.1;
    /// Buckets per factor-of-two of latency.
    const PER_OCTAVE: f64 = 8.0;
    /// Bucket count: 26 octaves above `MIN_MS` (~1.7 h) plus an underflow
    /// bucket at index 0 and an overflow bucket at the end.
    const BUCKETS: usize = 1 + 26 * 8 + 1;

    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; Self::BUCKETS],
            total: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }

    fn bucket_index(ms: f64) -> usize {
        if ms.is_nan() || ms <= Self::MIN_MS {
            // NaN, negative and tiny latencies all land in the underflow
            // bucket — they only ever shift quantiles downwards.
            return 0;
        }
        let octaves = (ms / Self::MIN_MS).log2();
        let idx = 1 + (octaves * Self::PER_OCTAVE) as usize;
        idx.min(Self::BUCKETS - 1)
    }

    /// Upper latency bound of bucket `i`, ms.
    fn bucket_upper_ms(i: usize) -> f64 {
        if i == 0 {
            Self::MIN_MS
        } else {
            Self::MIN_MS * 2f64.powf((i as f64) / Self::PER_OCTAVE)
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, ms: f64) {
        self.counts[Self::bucket_index(ms)] += 1;
        self.total += 1;
        self.sum_ms += ms.max(0.0);
        if ms > self.max_ms {
            self.max_ms = ms;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ms / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q·total)`; the top
    /// bucket reports the exact observed maximum. Returns 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == Self::BUCKETS - 1 {
                    self.max_ms
                } else {
                    Self::bucket_upper_ms(i).min(self.max_ms)
                };
            }
        }
        self.max_ms
    }

    /// Median.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_ms(0.50)
    }

    /// 99th percentile.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_ms(0.99)
    }

    /// 99.9th percentile.
    pub fn p999_ms(&self) -> f64 {
        self.quantile_ms(0.999)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ms += other.sum_ms;
        if other.max_ms > self.max_ms {
            self.max_ms = other.max_ms;
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One fixed-width interval's statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalStats {
    /// Tick at the end of the interval (exclusive).
    pub end_tick: Tick,
    /// Requests in the interval.
    pub requests: u64,
    /// Misses in the interval.
    pub misses: u64,
    /// Bytes missed in the interval (BTO traffic).
    pub miss_bytes: u64,
    /// Bytes requested in the interval.
    pub total_bytes: u64,
}

impl IntervalStats {
    /// Miss ratio within this interval.
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }
}

/// Records per-request outcomes and cuts them into interval snapshots for
/// time-series figures.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    interval: u64,
    totals: MissRatio,
    cur_requests: u64,
    cur_misses: u64,
    cur_miss_bytes: u64,
    cur_total_bytes: u64,
    next_cut: Tick,
    snapshots: Vec<IntervalStats>,
}

impl MetricsRecorder {
    /// Recorder that cuts a snapshot every `interval` requests.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        MetricsRecorder {
            interval,
            totals: MissRatio::new(),
            cur_requests: 0,
            cur_misses: 0,
            cur_miss_bytes: 0,
            cur_total_bytes: 0,
            next_cut: interval,
            snapshots: Vec::new(),
        }
    }

    /// Record a request outcome. `tick` must be non-decreasing.
    pub fn record(&mut self, tick: Tick, size: u64, hit: bool) {
        if hit {
            self.totals.record_hit(size);
        } else {
            self.totals.record_miss(size);
            self.cur_misses += 1;
            self.cur_miss_bytes += size;
        }
        self.cur_requests += 1;
        self.cur_total_bytes += size;
        if self.totals.requests() >= self.next_cut {
            self.cut(tick + 1);
        }
    }

    fn cut(&mut self, end_tick: Tick) {
        self.snapshots.push(IntervalStats {
            end_tick,
            requests: self.cur_requests,
            misses: self.cur_misses,
            miss_bytes: self.cur_miss_bytes,
            total_bytes: self.cur_total_bytes,
        });
        self.cur_requests = 0;
        self.cur_misses = 0;
        self.cur_miss_bytes = 0;
        self.cur_total_bytes = 0;
        self.next_cut += self.interval;
    }

    /// Flush a trailing partial interval (call once at end of run).
    pub fn finish(&mut self, end_tick: Tick) {
        if self.cur_requests > 0 {
            self.cut(end_tick);
        }
    }

    /// Cumulative statistics.
    pub fn totals(&self) -> &MissRatio {
        &self.totals
    }

    /// Interval snapshots cut so far.
    pub fn snapshots(&self) -> &[IntervalStats] {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_basic() {
        let mut m = MissRatio::new();
        m.record_hit(100);
        m.record_miss(300);
        m.record_miss(100);
        m.record_hit(100);
        assert_eq!(m.requests(), 4);
        assert!((m.miss_ratio() - 0.5).abs() < 1e-12);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
        assert!((m.byte_miss_ratio() - 400.0 / 600.0).abs() < 1e-12);
        assert_eq!(m.miss_bytes(), 400);
    }

    #[test]
    fn empty_tracker_is_zero() {
        let m = MissRatio::new();
        assert_eq!(m.miss_ratio(), 0.0);
        assert_eq!(m.byte_miss_ratio(), 0.0);
    }

    #[test]
    fn window_resets() {
        let mut m = MissRatio::new();
        m.record_hit(1);
        m.record_miss(1);
        assert!((m.window_hit_rate() - 0.5).abs() < 1e-12);
        assert!((m.take_window_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.take_window_hit_rate(), 0.0);
        m.record_hit(1);
        assert!((m.take_window_hit_rate() - 1.0).abs() < 1e-12);
        // Cumulative stats unaffected by window resets.
        assert_eq!(m.requests(), 3);
    }

    #[test]
    fn recorder_cuts_intervals() {
        let mut r = MetricsRecorder::new(2);
        r.record(0, 10, false);
        r.record(1, 10, true);
        r.record(2, 10, false);
        r.finish(3);
        let s = r.snapshots();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].requests, 2);
        assert_eq!(s[0].misses, 1);
        assert!((s[0].miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s[1].requests, 1);
        assert_eq!(s[1].miss_bytes, 10);
        assert!((r.totals().miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn finish_without_partial_is_noop() {
        let mut r = MetricsRecorder::new(2);
        r.record(0, 1, true);
        r.record(1, 1, true);
        r.finish(2);
        assert_eq!(r.snapshots().len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = MetricsRecorder::new(0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ms(), 0.0);
        assert_eq!(h.p999_ms(), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        // 1000 samples: 980 at ~10ms, 18 at ~200ms, 2 at 5000ms.
        for _ in 0..980 {
            h.record(10.0);
        }
        for _ in 0..18 {
            h.record(200.0);
        }
        h.record(5000.0);
        h.record(5000.0);
        assert_eq!(h.count(), 1000);
        // Log buckets are 2^(1/8) wide, so quantiles are within ~9 %.
        let p50 = h.p50_ms();
        assert!((9.0..11.0).contains(&p50), "p50 {p50}");
        let p99 = h.p99_ms();
        assert!((180.0..220.0).contains(&p99), "p99 {p99}");
        let p999 = h.p999_ms();
        assert!((4500.0..=5000.0).contains(&p999), "p999 {p999}");
        assert_eq!(h.max_ms(), 5000.0);
        assert!((h.mean_ms() - (980.0 * 10.0 + 18.0 * 200.0 + 10000.0) / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        for i in 0..10_000u64 {
            h.record((i % 977) as f64 * 1.3);
        }
        let mut last = 0.0;
        for q in [0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.quantile_ms(q);
            assert!(v >= last, "q={q}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(1e12); // far past the top bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile_ms(1.0), 1e12);
        assert!(h.quantile_ms(0.34) <= 0.1);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..500u64 {
            let x = (i * 37 % 991) as f64;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn histogram_is_deterministic() {
        let run = || {
            let mut h = LatencyHistogram::new();
            for i in 0..5000u64 {
                h.record((i as f64).sqrt() * 7.3 + (i % 13) as f64);
            }
            (h.p50_ms(), h.p99_ms(), h.p999_ms(), h.mean_ms())
        };
        assert_eq!(run(), run());
    }
}
