//! Cache substrate for the SCIP reproduction.
//!
//! This crate contains everything a trace-driven CDN cache simulator needs
//! below the policy level:
//!
//! - [`rng`]: a small, fast, seedable xoshiro256++ PRNG so every simulation
//!   is deterministic and reproducible.
//! - [`hash`]: an Fx-style hasher and map/set aliases for integer-keyed
//!   metadata tables (hot path of every policy).
//! - [`object`]: object identifiers, request records and logical time.
//! - [`index`]: a fused open-addressing id→handle table (fibonacci probe,
//!   backward-shift deletion) whose buckets hold key and payload inline —
//!   one probe sequence resolves residency, no hashmap-then-slab chase.
//! - [`prefetch`]: a safe software-prefetch shim (`_mm_prefetch` on
//!   x86_64, no-op elsewhere) used by eviction loops and batched replay.
//! - [`list`]: a slab-backed intrusive doubly-linked list with stable
//!   handles — the O(1) backbone of every queue-based policy. Stored
//!   structure-of-arrays: link words separate from values.
//! - [`queue`]: a byte-budgeted LRU queue with MRU/LRU bimodal insertion,
//!   per-entry policy tags, and tail eviction.
//! - [`segq`]: a segmented queue (stack of LRU queues with overflow) used by
//!   S4LRU, SS-LRU, PIPP and DGIPPR.
//! - [`ghost`]: FIFO ghost (history) lists holding metadata of evicted
//!   objects under a byte budget — the `H_m`/`H_l` of the paper.
//! - [`metrics`]: miss-ratio tracking, windowed hit rates and byte metrics.
//! - [`model`]: deliberately naive reference implementations of the above
//!   structures (Vec + linear scans + u128 ledgers) for differential
//!   testing; every structure also exposes an O(n) `audit()` invariant
//!   walk, called from hot paths when built with `--features audit`.
//! - [`policy`]: the `CachePolicy` trait that every replacement algorithm
//!   and insertion policy in the workspace implements.
//! - `fault` (feature `fault-injection`): a deterministic failpoint
//!   registry shared by the trace reader and the sweep executor, so tests
//!   can prove every recovery path actually recovers.

#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod ghost;
pub mod hash;
pub mod index;
pub mod list;
pub mod metrics;
pub mod model;
pub mod object;
pub mod policy;
pub mod prefetch;
pub mod queue;
pub mod rng;
pub mod segq;

pub use ghost::{GhostEntry, GhostList};
pub use hash::{key_shard, rendezvous_weight, route_with_failover, FxHashMap, FxHashSet};
pub use index::FusedIndex;
pub use list::{Handle, LinkedSlab};
pub use metrics::{IntervalStats, LatencyHistogram, MetricsRecorder, MissRatio};
pub use model::{ModelGhost, ModelLru, ModelLruPolicy, ModelSegQ};
pub use object::{ObjectId, Request, Tick};
pub use policy::{
    export_lru_queue, export_segmented_queue, restore_lru_queue, restore_segmented_queue,
    AccessKind, CachePolicy, InsertPos, PolicyStats, RejectReason, ResidentEntry,
};
pub use prefetch::llc_bytes;
pub use queue::{EntryMeta, EvictedEntry, LruQueue};
pub use rng::SimRng;
pub use segq::SegmentedQueue;
