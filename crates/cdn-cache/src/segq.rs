//! A segmented recency queue: a stack of LRU queues with cascading demotion.
//!
//! Segment `n-1` is the most-protected end; segment `0` is the eviction end.
//! When a segment exceeds its byte budget, its LRU entry is demoted to the
//! MRU position of the segment below; overflow of segment 0 evicts. This is
//! the structure behind S4LRU and SS-LRU, and its segment boundaries give
//! PIPP and DGIPPR their O(1) "insert at queue fraction k/N" positions.
//!
//! The *global* recency order is the concatenation
//! `seg[n-1] (MRU→LRU) ++ ... ++ seg[0] (MRU→LRU)`.

use crate::index::FusedIndex;
use crate::object::{ObjectId, Tick};
use crate::queue::{EntryMeta, EvictedEntry, LruQueue};

/// Stack of LRU queues with per-segment byte budgets.
#[derive(Debug, Clone)]
pub struct SegmentedQueue {
    /// Index 0 = eviction end.
    segments: Vec<LruQueue>,
    budgets: Vec<u64>,
    /// id → segment index, stored in a fused open-addressing table
    /// (segment indices are ≤ 255, far from the empty sentinel).
    seg_of: FusedIndex,
    total_capacity: u64,
}

impl SegmentedQueue {
    /// Build with `fractions.len()` segments; `fractions[i]` is segment
    /// `i`'s share of `total_capacity`. Fractions must be positive and sum
    /// to ~1.
    pub fn new(total_capacity: u64, fractions: &[f64]) -> Self {
        assert!(!fractions.is_empty(), "need at least one segment");
        assert!(fractions.len() <= 256, "at most 256 segments");
        let sum: f64 = fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "segment fractions must sum to 1 (got {sum})"
        );
        let mut budgets: Vec<u64> = fractions
            .iter()
            .map(|&f| {
                assert!(f > 0.0, "segment fraction must be positive");
                (total_capacity as f64 * f) as u64
            })
            .collect();
        // Give rounding remainder to the top segment so budgets sum to the
        // total capacity exactly (f64 rounding can land on either side for
        // huge capacities, hence the saturating form).
        let last = budgets.len() - 1;
        let sum_head: u64 = budgets[..last].iter().sum();
        budgets[last] = total_capacity.saturating_sub(sum_head).max(1);
        SegmentedQueue {
            // Segments are budgeted by `budgets`, not by the queues
            // themselves, because cascade demotion transiently overfills.
            segments: fractions.iter().map(|_| LruQueue::new(u64::MAX)).collect(),
            budgets,
            seg_of: FusedIndex::new(),
            total_capacity,
        }
    }

    /// Equal-share segmentation (S4LRU uses 4 segments).
    pub fn equal(total_capacity: u64, n_segments: usize) -> Self {
        let frac = vec![1.0 / n_segments as f64; n_segments];
        Self::new(total_capacity, &frac)
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total byte capacity.
    pub fn capacity(&self) -> u64 {
        self.total_capacity
    }

    /// Bytes resident across all segments. Saturating: mid-insert the queue
    /// can transiently hold up to capacity + one object, which must not
    /// wrap for capacities near `u64::MAX`.
    pub fn used_bytes(&self) -> u64 {
        self.segments
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.used_bytes()))
    }

    /// Objects resident across all segments.
    pub fn len(&self) -> usize {
        self.seg_of.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.seg_of.is_empty()
    }

    /// True if `id` is resident (in any segment).
    pub fn contains(&self, id: ObjectId) -> bool {
        self.seg_of.contains(id.0)
    }

    /// Pull the segment-index bucket for `id` toward L1 ahead of a lookup
    /// a few requests from now (batched replay).
    #[inline]
    pub fn prefetch_lookup(&self, id: ObjectId) {
        self.seg_of.prefetch(id.0);
    }

    /// Segment currently holding `id`.
    pub fn segment_of(&self, id: ObjectId) -> Option<usize> {
        self.seg_of.get(id.0).map(|s| s as usize)
    }

    /// Entry metadata of a resident object.
    pub fn get(&self, id: ObjectId) -> Option<EntryMeta> {
        let seg = self.seg_of.get(id.0)?;
        self.segments[seg as usize].get(id)
    }

    /// Record a hit on a resident object: bump hit count and last-access
    /// without moving it (the segment queues' hot arrays absorb the
    /// write).
    pub fn record_hit(&mut self, id: ObjectId, tick: Tick) {
        if let Some(seg) = self.seg_of.get(id.0) {
            self.segments[seg as usize].record_hit(id, tick);
        }
    }

    /// Cascade overflow from segment `from` downward; evictions from
    /// segment 0 are appended to `evicted`.
    fn rebalance(&mut self, from: usize, evicted: &mut Vec<EvictedEntry>) {
        for i in (0..=from).rev() {
            while self.segments[i].used_bytes() > self.budgets[i] {
                let victim = self.segments[i]
                    .evict_lru()
                    .expect("overfull segment is nonempty");
                if i == 0 {
                    self.seg_of.remove(victim.id.0);
                    evicted.push(victim);
                } else {
                    self.seg_of.insert(victim.id.0, (i - 1) as u64);
                    self.segments[i - 1].insert_meta_mru(victim);
                }
            }
        }
        // A demotion into segment i-1 can overflow it even when `from` was
        // higher; the loop above already visits every lower segment, so no
        // further pass is needed.
    }

    /// Insert a *new* object at the MRU position of segment `seg`,
    /// returning any entries evicted out the bottom.
    pub fn insert(&mut self, seg: usize, id: ObjectId, size: u64, tick: Tick) -> Vec<EvictedEntry> {
        assert!(seg < self.segments.len());
        debug_assert!(!self.contains(id), "insert of resident object {id}");
        self.segments[seg].insert_mru(id, size, tick);
        self.seg_of.insert(id.0, seg as u64);
        let mut evicted = Vec::new();
        // Rebalance from the very top: boundary-crossing promotions may
        // have left upper segments transiently over budget.
        self.rebalance(self.segments.len() - 1, &mut evicted);
        evicted
    }

    /// Re-insert a preserved entry at the MRU position of segment `seg`
    /// without resetting its residency statistics, rebalancing exactly as
    /// a normal insert would (snapshot restore path: replaying a
    /// previously exported resident set coldest-first reconstructs each
    /// segment's recency order).
    pub fn insert_meta(&mut self, seg: usize, meta: EntryMeta) -> Vec<EvictedEntry> {
        assert!(seg < self.segments.len());
        debug_assert!(!self.contains(meta.id), "insert of resident object");
        self.seg_of.insert(meta.id.0, seg as u64);
        self.segments[seg].insert_meta_mru(meta);
        let mut evicted = Vec::new();
        self.rebalance(self.segments.len() - 1, &mut evicted);
        evicted
    }

    /// Record a hit and move the object to the MRU position of segment
    /// `target_seg` (S4LRU: `min(cur + 1, n-1)`), returning overflow
    /// evictions.
    pub fn hit_move_to(
        &mut self,
        id: ObjectId,
        target_seg: usize,
        tick: Tick,
    ) -> Vec<EvictedEntry> {
        assert!(target_seg < self.segments.len());
        let cur = self.seg_of.get(id.0).expect("hit on non-resident object") as usize;
        self.segments[cur].record_hit(id, tick);
        let mut meta = self.segments[cur].remove(id).expect("resident");
        meta.inserted_at_mru = true;
        self.segments[target_seg].insert_meta_mru(meta);
        self.seg_of.insert(id.0, target_seg as u64);
        let mut evicted = Vec::new();
        self.rebalance(self.segments.len() - 1, &mut evicted);
        evicted
    }

    /// Move the object one position toward the global MRU end. Crossing a
    /// segment boundary moves it to the LRU position of the segment above.
    pub fn promote_one_global(&mut self, id: ObjectId) {
        let Some(seg) = self.seg_of.get(id.0) else {
            return;
        };
        let seg = seg as usize;
        let at_front = self.segments[seg].peek_mru().is_some_and(|m| m.id == id);
        if at_front {
            if seg + 1 < self.segments.len() {
                let meta = self.segments[seg].remove(id).expect("resident");
                self.segments[seg + 1].insert_meta_lru(meta);
                self.seg_of.insert(id.0, (seg + 1) as u64);
                // Note: byte budgets are intentionally not rebalanced here;
                // promote-by-one must not evict. The next insert rebalances.
            }
        } else {
            self.segments[seg].promote_one(id);
        }
    }

    /// Remove a resident object without recording an eviction.
    pub fn remove(&mut self, id: ObjectId) -> Option<EntryMeta> {
        let seg = self.seg_of.remove(id.0)? as usize;
        self.segments[seg].remove(id)
    }

    /// Evict the globally least-recent entry (LRU of the lowest non-empty
    /// segment).
    pub fn evict_global(&mut self) -> Option<EvictedEntry> {
        for seg in 0..self.segments.len() {
            if !self.segments[seg].is_empty() {
                let victim = self.segments[seg].evict_lru().expect("nonempty");
                self.seg_of.remove(victim.id.0);
                return Some(victim);
            }
        }
        None
    }

    /// Iterate a segment's entries MRU→LRU.
    pub fn iter_segment(&self, seg: usize) -> impl Iterator<Item = EntryMeta> + '_ {
        self.segments[seg].iter()
    }

    /// Iterate all entries in global recency order (most protected first).
    pub fn iter_global(&self) -> impl Iterator<Item = EntryMeta> + '_ {
        self.segments.iter().rev().flat_map(|s| s.iter())
    }

    /// Structural invariant walk (O(n)). Checks each segment's internal
    /// consistency (via [`LruQueue::audit`]), that `seg_of` and the segment
    /// queues describe the same resident set with matching indices, and
    /// that the total resident bytes (summed in u128) fit the queue's
    /// capacity. Per-segment byte *budgets* are deliberately not checked:
    /// [`SegmentedQueue::promote_one_global`] overfills them by design and
    /// the next insert rebalances.
    pub fn audit(&self) -> Result<(), String> {
        let mut sum: u128 = 0;
        let mut n = 0usize;
        for (i, seg) in self.segments.iter().enumerate() {
            seg.audit().map_err(|e| format!("segq seg {i}: {e}"))?;
            for m in seg.iter() {
                match self.seg_of.get(m.id.0) {
                    None => {
                        return Err(format!("segq: resident {} missing from seg_of", m.id.0));
                    }
                    Some(s) if s as usize != i => {
                        return Err(format!(
                            "segq: {} resident in seg {i} but seg_of says {s}",
                            m.id.0
                        ));
                    }
                    _ => {}
                }
                sum += m.size as u128;
                n += 1;
            }
        }
        self.seg_of.audit().map_err(|e| format!("segq: {e}"))?;
        if n != self.seg_of.len() {
            return Err(format!(
                "segq: segments hold {n} entries, seg_of has {}",
                self.seg_of.len()
            ));
        }
        if sum > self.total_capacity as u128 {
            return Err(format!(
                "segq: Σsizes={sum} exceeds capacity={}",
                self.total_capacity
            ));
        }
        Ok(())
    }

    /// True metadata footprint: per-segment hot/cold arrays and index
    /// tables plus the global segment-index table.
    pub fn memory_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.memory_bytes())
            .sum::<usize>()
            + self.seg_of.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn global_ids(q: &SegmentedQueue) -> Vec<u64> {
        q.iter_global().map(|m| m.id.0).collect()
    }

    #[test]
    fn budgets_sum_to_capacity() {
        let q = SegmentedQueue::new(1000, &[0.3, 0.3, 0.4]);
        assert_eq!(q.budgets.iter().sum::<u64>(), 1000);
        assert_eq!(q.n_segments(), 3);
    }

    #[test]
    fn insert_into_segment_and_lookup() {
        let mut q = SegmentedQueue::equal(400, 2);
        let ev = q.insert(1, ObjectId(1), 100, 0);
        assert!(ev.is_empty());
        assert_eq!(q.segment_of(ObjectId(1)), Some(1));
        assert_eq!(q.used_bytes(), 100);
        assert!(q.contains(ObjectId(1)));
    }

    #[test]
    fn overflow_cascades_downward() {
        let mut q = SegmentedQueue::equal(400, 2); // 200 per segment
        q.insert(1, ObjectId(1), 150, 0);
        q.insert(1, ObjectId(2), 150, 1); // seg1 over budget: demote id 1
        assert_eq!(q.segment_of(ObjectId(1)), Some(0));
        assert_eq!(q.segment_of(ObjectId(2)), Some(1));
        assert_eq!(q.used_bytes(), 300);
    }

    #[test]
    fn overflow_evicts_from_bottom() {
        let mut q = SegmentedQueue::equal(400, 2);
        q.insert(1, ObjectId(1), 150, 0);
        q.insert(1, ObjectId(2), 150, 1);
        let ev = q.insert(1, ObjectId(3), 150, 2);
        // id2,id3 in seg1 -> id2 demoted; seg0 holds id1+id2=300 > 200 ->
        // evict id1.
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].id, ObjectId(1));
        assert_eq!(q.used_bytes(), 300);
    }

    #[test]
    fn s4lru_style_hit_promotion() {
        let mut q = SegmentedQueue::equal(4000, 4);
        q.insert(0, ObjectId(1), 100, 0);
        assert_eq!(q.segment_of(ObjectId(1)), Some(0));
        q.hit_move_to(ObjectId(1), 1, 1);
        assert_eq!(q.segment_of(ObjectId(1)), Some(1));
        assert_eq!(q.get(ObjectId(1)).unwrap().hits, 1);
        q.hit_move_to(ObjectId(1), 2, 2);
        assert_eq!(q.segment_of(ObjectId(1)), Some(2));
        assert_eq!(q.get(ObjectId(1)).unwrap().hits, 2);
    }

    #[test]
    fn global_order_concatenates_segments() {
        let mut q = SegmentedQueue::equal(10_000, 2);
        q.insert(1, ObjectId(1), 10, 0);
        q.insert(1, ObjectId(2), 10, 1);
        q.insert(0, ObjectId(3), 10, 2);
        q.insert(0, ObjectId(4), 10, 3);
        // seg1: 2,1 ; seg0: 4,3 → global: 2 1 4 3
        assert_eq!(global_ids(&q), vec![2, 1, 4, 3]);
    }

    #[test]
    fn evict_global_prefers_lowest_segment() {
        let mut q = SegmentedQueue::equal(10_000, 2);
        q.insert(1, ObjectId(1), 10, 0);
        q.insert(0, ObjectId(2), 10, 1);
        let v = q.evict_global().unwrap();
        assert_eq!(v.id, ObjectId(2));
        let v = q.evict_global().unwrap();
        assert_eq!(v.id, ObjectId(1));
        assert!(q.evict_global().is_none());
    }

    #[test]
    fn promote_one_within_and_across_segments() {
        let mut q = SegmentedQueue::equal(10_000, 2);
        q.insert(0, ObjectId(1), 10, 0);
        q.insert(0, ObjectId(2), 10, 1);
        // seg0 order: 2,1
        q.promote_one_global(ObjectId(1));
        assert_eq!(global_ids(&q), vec![1, 2]);
        // id 1 now at front of seg0: next promote crosses into seg1 (LRU
        // position of seg1).
        q.promote_one_global(ObjectId(1));
        assert_eq!(q.segment_of(ObjectId(1)), Some(1));
        q.insert(1, ObjectId(3), 10, 2);
        assert_eq!(global_ids(&q), vec![3, 1, 2]);
        // At front of the top segment: promote is a no-op.
        q.promote_one_global(ObjectId(3));
        assert_eq!(global_ids(&q), vec![3, 1, 2]);
    }

    #[test]
    fn remove_frees_without_evicting() {
        let mut q = SegmentedQueue::equal(400, 2);
        q.insert(1, ObjectId(1), 100, 0);
        let m = q.remove(ObjectId(1)).unwrap();
        assert_eq!(m.size, 100);
        assert!(q.is_empty());
        assert!(q.remove(ObjectId(1)).is_none());
    }

    #[test]
    fn meta_preserved_across_demotion() {
        let mut q = SegmentedQueue::equal(400, 2);
        q.insert(1, ObjectId(1), 150, 0);
        q.hit_move_to(ObjectId(1), 1, 5);
        q.insert(1, ObjectId(2), 150, 6); // demotes id 1 to seg0
        let m = q.get(ObjectId(1)).unwrap();
        assert_eq!(m.hits, 1);
        assert_eq!(m.inserted_tick, 0);
        assert_eq!(m.last_access, 5);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_fractions_rejected() {
        let _ = SegmentedQueue::new(100, &[0.5, 0.2]);
    }
}
