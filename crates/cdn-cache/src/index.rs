//! Fused open-addressing index: the one-probe id→handle table behind
//! [`crate::LruQueue`], [`crate::GhostList`] and [`crate::SegmentedQueue`].
//!
//! The map-beside-slab design paid two dependent cache misses per request:
//! a `FxHashMap<ObjectId, Handle>` probe (SwissTable control bytes + slot
//! array) followed by a scattered slab-node touch. This table stores the
//! `(key, payload)` pair inline in a flat power-of-two bucket array, so a
//! lookup is a single linear probe sequence over 16-byte buckets.
//!
//! Design points:
//!
//! - **Fibonacci hashing**: the home bucket is the *top* bits of
//!   `key * 2^64/φ`, which scatter well even for sequential object ids
//!   (the low bits of a multiply are weak, the top bits mix every input
//!   bit). A second, independent slice of the same product (`h2`, 7 bits)
//!   is stored per slot in a control-byte array.
//! - **Group-scanned linear probing**: the probe loop inspects 16 control
//!   bytes per step with one SSE2 compare (scalar fallback elsewhere),
//!   so h2 candidates and empty slots across 16 buckets cost one load
//!   each. This matters at high load: plain one-slot-at-a-time linear
//!   probing at the 7/8 cap pays ~10-slot unsuccessful probes from
//!   primary clustering, and miss-heavy replay traces (≈50% miss ratio)
//!   hit the unsuccessful path on every miss. Group scanning covers a
//!   whole cluster per iteration, and an empty slot anywhere in the
//!   group terminates a miss immediately.
//! - **Backward-shift deletion**: removing a key shifts displaced
//!   successors back toward their home bucket instead of leaving a
//!   tombstone, so tables never degrade under churn — delete-heavy
//!   workloads (eviction storms) keep the exact probe distances a fresh
//!   rebuild would produce.
//! - The **empty sentinel lives in the payload** (`EMPTY_PAYLOAD`), not the
//!   key, so every `u64` — including `u64::MAX`, which adversarial traces
//!   use as an object id — is a valid key. (Emptiness is tracked by the
//!   control bytes; the payload sentinel is kept in sync as a cross-check
//!   for `audit()` and `iter()`.)

use crate::prefetch::prefetch_read;

/// Reserved payload marking an empty bucket. Callers may store any payload
/// except this value; the structures in this crate pack `Handle { idx, gen }`
/// as `gen << 32 | idx` with `idx < u32::MAX`, which can never collide.
pub const EMPTY_PAYLOAD: u64 = u64::MAX;

/// 2^64 / φ — the multiplicative constant of fibonacci hashing.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Grow when `len * 8 >= capacity * 7` (load factor 7/8).
const MAX_LOAD_NUM: usize = 7;
const MAX_LOAD_DEN: usize = 8;

/// Control bytes scanned per probe step.
const GROUP: usize = 16;

/// Control byte for an empty slot (high bit set; live slots store a 7-bit
/// `h2` fingerprint with the high bit clear).
const CTRL_EMPTY: u8 = 0x80;

/// Buckets allocated by the first insert into an empty table. One group,
/// so a single probe step always covers the whole table at minimum size.
const MIN_CAPACITY: usize = GROUP;

#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct Bucket {
    key: u64,
    payload: u64,
}

// One cache line holds exactly four buckets.
const _: () = assert!(std::mem::size_of::<Bucket>() == 16);

const EMPTY_BUCKET: Bucket = Bucket {
    key: 0,
    payload: EMPTY_PAYLOAD,
};

/// Bitmask of positions within a probed group: which slots match the `h2`
/// fingerprint, and which are empty.
#[derive(Clone, Copy)]
struct GroupScan {
    matches: u32,
    empties: u32,
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn scan_group(ctrl: &[u8], start: usize, h2: u8) -> GroupScan {
    // SAFETY: callers guarantee `start + GROUP <= ctrl.len()` (the control
    // array carries a GROUP-byte mirror tail past the last bucket).
    unsafe {
        use std::arch::x86_64::{
            _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8,
        };
        let group = _mm_loadu_si128(ctrl.as_ptr().add(start) as *const _);
        let matches = _mm_movemask_epi8(_mm_cmpeq_epi8(group, _mm_set1_epi8(h2 as i8))) as u32;
        // Only CTRL_EMPTY has the high bit set, so the sign mask of the raw
        // group is exactly the empty mask.
        let empties = _mm_movemask_epi8(group) as u32;
        GroupScan { matches, empties }
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn scan_group(ctrl: &[u8], start: usize, h2: u8) -> GroupScan {
    let mut matches = 0u32;
    let mut empties = 0u32;
    for (j, &c) in ctrl[start..start + GROUP].iter().enumerate() {
        if c == h2 {
            matches |= 1 << j;
        }
        if c == CTRL_EMPTY {
            empties |= 1 << j;
        }
    }
    GroupScan { matches, empties }
}

/// Open-addressing `u64 → u64` table with inline buckets (see module docs).
#[derive(Debug, Clone, Default)]
pub struct FusedIndex {
    /// One byte per bucket (`h2` fingerprint or [`CTRL_EMPTY`]), plus a
    /// GROUP-byte mirror of the first GROUP bytes so group loads never
    /// need explicit wraparound.
    ctrl: Vec<u8>,
    buckets: Vec<Bucket>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Right-shift turning a fibonacci product into a home bucket index.
    shift: u32,
    len: usize,
}

impl FusedIndex {
    /// Empty table. Allocates nothing until the first insert.
    pub fn new() -> Self {
        FusedIndex {
            ctrl: Vec::new(),
            buckets: Vec::new(),
            mask: 0,
            shift: 0,
            len: 0,
        }
    }

    /// Empty table pre-sized so `n` entries fit without growing.
    pub fn with_capacity(n: usize) -> Self {
        let mut t = Self::new();
        if n > 0 {
            t.grow_to(Self::buckets_for(n));
        }
        t
    }

    fn buckets_for(n: usize) -> usize {
        (n * MAX_LOAD_DEN / MAX_LOAD_NUM + 1)
            .next_power_of_two()
            .max(MIN_CAPACITY)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated bucket count (0 or a power of two).
    pub fn capacity(&self) -> usize {
        self.buckets.len()
    }

    /// True heap footprint of the table: bucket array plus control bytes.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<Bucket>() + self.ctrl.capacity()
    }

    #[inline(always)]
    fn home(&self, key: u64) -> usize {
        // Top bits of the fibonacci product, so the shift depends on the
        // table size: (key * FIB) >> (64 - log2(buckets)).
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// 7-bit fingerprint stored in the control byte: a low slice of the
    /// fibonacci product, independent of the top bits that pick the home
    /// bucket (keys colliding on `home` still disagree on `h2` with
    /// probability ~127/128).
    #[inline(always)]
    fn h2(key: u64) -> u8 {
        (key.wrapping_mul(FIB) & 0x7f) as u8
    }

    /// Write a control byte, keeping the wraparound mirror tail in sync.
    #[inline(always)]
    fn set_ctrl(&mut self, i: usize, v: u8) {
        self.ctrl[i] = v;
        if i < GROUP {
            let n = self.buckets.len();
            self.ctrl[n + i] = v;
        }
    }

    /// Touch the home bucket of `key` so a subsequent
    /// [`FusedIndex::get`] probe starts from warm cache lines. No-op on
    /// an unallocated table and on non-x86_64 targets.
    #[inline(always)]
    pub fn prefetch(&self, key: u64) {
        if !self.buckets.is_empty() {
            let home = self.home(key);
            prefetch_read(&self.ctrl[home]);
            prefetch_read(&self.buckets[home]);
        }
    }

    /// Payload stored for `key`, if present. One group scan covers 16
    /// buckets; an empty slot anywhere in the group ends a miss.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        if self.buckets.is_empty() {
            return None;
        }
        let h2 = Self::h2(key);
        let mut i = self.home(key);
        loop {
            let scan = scan_group(&self.ctrl, i, h2);
            let mut m = scan.matches;
            while m != 0 {
                let j = (i + m.trailing_zeros() as usize) & self.mask;
                let b = &self.buckets[j];
                if b.key == key {
                    return Some(b.payload);
                }
                m &= m - 1;
            }
            if scan.empties != 0 {
                return None;
            }
            i = (i + GROUP) & self.mask;
        }
    }

    /// True if `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert or replace. Returns the previous payload if `key` was
    /// present. `payload` must not be [`EMPTY_PAYLOAD`].
    #[inline]
    pub fn insert(&mut self, key: u64, payload: u64) -> Option<u64> {
        debug_assert!(payload != EMPTY_PAYLOAD, "payload is the empty sentinel");
        if self.buckets.is_empty()
            || (self.len + 1) * MAX_LOAD_DEN > self.buckets.len() * MAX_LOAD_NUM
        {
            self.grow_to(Self::buckets_for(self.len + 1));
        }
        let h2 = Self::h2(key);
        let mut i = self.home(key);
        loop {
            let scan = scan_group(&self.ctrl, i, h2);
            let mut m = scan.matches;
            while m != 0 {
                let j = (i + m.trailing_zeros() as usize) & self.mask;
                let b = &mut self.buckets[j];
                if b.key == key {
                    return Some(std::mem::replace(&mut b.payload, payload));
                }
                m &= m - 1;
            }
            if scan.empties != 0 {
                // The chain ends inside this group: the key is absent, and
                // linear probing places it at the chain's first empty slot.
                let j = (i + scan.empties.trailing_zeros() as usize) & self.mask;
                self.buckets[j] = Bucket { key, payload };
                self.set_ctrl(j, h2);
                self.len += 1;
                return None;
            }
            i = (i + GROUP) & self.mask;
        }
    }

    /// Remove `key`, returning its payload. Backward-shift deletion: the
    /// probe chain after the hole is compacted in place, so no tombstones
    /// exist and lookups never scan dead buckets.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        if self.buckets.is_empty() {
            return None;
        }
        let h2 = Self::h2(key);
        let mut i = self.home(key);
        let (pos, removed) = 'find: loop {
            let scan = scan_group(&self.ctrl, i, h2);
            let mut m = scan.matches;
            while m != 0 {
                let j = (i + m.trailing_zeros() as usize) & self.mask;
                let b = &self.buckets[j];
                if b.key == key {
                    break 'find (j, b.payload);
                }
                m &= m - 1;
            }
            if scan.empties != 0 {
                return None;
            }
            i = (i + GROUP) & self.mask;
        };
        // Shift successors back one slot at a time: bucket j can fill hole
        // iff its home position lies at or before the hole in probe order,
        // i.e. the cyclic distance home(j)→j is at least the distance
        // hole→j.
        let mut hole = pos;
        let mut j = pos;
        loop {
            j = (j + 1) & self.mask;
            if self.ctrl[j] == CTRL_EMPTY {
                break;
            }
            let b = self.buckets[j];
            let home = self.home(b.key);
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(hole) & self.mask) {
                self.buckets[hole] = b;
                let c = self.ctrl[j];
                self.set_ctrl(hole, c);
                hole = j;
            }
        }
        self.buckets[hole] = EMPTY_BUCKET;
        self.set_ctrl(hole, CTRL_EMPTY);
        self.len -= 1;
        Some(removed)
    }

    /// Drop every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.ctrl.fill(CTRL_EMPTY);
        self.buckets.fill(EMPTY_BUCKET);
        self.len = 0;
    }

    /// Iterate `(key, payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .filter(|b| b.payload != EMPTY_PAYLOAD)
            .map(|b| (b.key, b.payload))
    }

    fn grow_to(&mut self, new_buckets: usize) {
        debug_assert!(new_buckets.is_power_of_two());
        if new_buckets <= self.buckets.len() {
            return;
        }
        let old = std::mem::replace(&mut self.buckets, vec![EMPTY_BUCKET; new_buckets]);
        self.ctrl = vec![CTRL_EMPTY; new_buckets + GROUP];
        self.mask = new_buckets - 1;
        self.shift = 64 - new_buckets.trailing_zeros();
        for b in old {
            if b.payload == EMPTY_PAYLOAD {
                continue;
            }
            // Keys are unique, so rehash placement is a plain first-empty
            // linear scan from home.
            let mut i = self.home(b.key);
            while self.ctrl[i] != CTRL_EMPTY {
                i = (i + 1) & self.mask;
            }
            self.buckets[i] = b;
            let h2 = Self::h2(b.key);
            self.set_ctrl(i, h2);
        }
    }

    /// Structural invariant walk (O(buckets)): control bytes agree with
    /// the payload sentinel and the stored keys' fingerprints, the mirror
    /// tail matches, live-bucket count matches `len`, every key resolves
    /// through its own probe chain (no key is stranded behind an empty
    /// bucket), and the load factor bound holds.
    pub fn audit(&self) -> Result<(), String> {
        let live = self
            .buckets
            .iter()
            .filter(|b| b.payload != EMPTY_PAYLOAD)
            .count();
        if live != self.len {
            return Err(format!("index: {live} live buckets but len={}", self.len));
        }
        if !self.buckets.is_empty() {
            let n = self.buckets.len();
            if !n.is_power_of_two() {
                return Err(format!("index: {n} buckets not a power of two"));
            }
            if self.ctrl.len() != n + GROUP {
                return Err(format!(
                    "index: {} control bytes for {n} buckets",
                    self.ctrl.len()
                ));
            }
            if self.len * MAX_LOAD_DEN > n * MAX_LOAD_NUM {
                return Err(format!(
                    "index: load {}/{n} exceeds {MAX_LOAD_NUM}/{MAX_LOAD_DEN}",
                    self.len
                ));
            }
            for (i, b) in self.buckets.iter().enumerate() {
                let want = if b.payload == EMPTY_PAYLOAD {
                    CTRL_EMPTY
                } else {
                    Self::h2(b.key)
                };
                if self.ctrl[i] != want {
                    return Err(format!(
                        "index: ctrl[{i}]={:#04x} disagrees with bucket ({want:#04x})",
                        self.ctrl[i]
                    ));
                }
                if i < GROUP && self.ctrl[n + i] != self.ctrl[i] {
                    return Err(format!("index: mirror byte {i} out of sync"));
                }
                if b.payload != EMPTY_PAYLOAD && self.get(b.key) != Some(b.payload) {
                    return Err(format!("index: key {} unreachable from its home", b.key));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_allocates_nothing() {
        let t = FusedIndex::new();
        assert_eq!(t.memory_bytes(), 0);
        assert_eq!(t.get(7), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn insert_get_replace() {
        let mut t = FusedIndex::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(2, 20), None);
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(1), Some(11));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_with_backward_shift_keeps_chains_reachable() {
        let mut t = FusedIndex::new();
        for k in 0..100u64 {
            t.insert(k, k * 2);
        }
        for k in (0..100).step_by(2) {
            assert_eq!(t.remove(k), Some(k * 2));
        }
        for k in 0..100u64 {
            let want = (k % 2 == 1).then_some(k * 2);
            assert_eq!(t.get(k), want, "key {k}");
        }
        t.audit().unwrap();
    }

    #[test]
    fn extreme_keys_are_valid() {
        let mut t = FusedIndex::new();
        t.insert(u64::MAX, 1);
        t.insert(0, 2);
        t.insert(u64::MAX / 2, 3);
        assert_eq!(t.get(u64::MAX), Some(1));
        assert_eq!(t.get(0), Some(2));
        assert_eq!(t.remove(u64::MAX), Some(1));
        assert_eq!(t.get(u64::MAX), None);
        assert_eq!(t.get(0), Some(2));
        t.audit().unwrap();
    }

    #[test]
    fn colliding_fingerprints_disambiguate_on_keys() {
        // Keys crafted to share h2 (same low 7 bits of the fibonacci
        // product modulo the multiplier's group structure are hard to hit
        // directly, so brute-force a few collisions instead).
        let mut t = FusedIndex::new();
        let base = 3u64;
        let h = FusedIndex::h2(base);
        let twins: Vec<u64> = (0..100_000u64)
            .filter(|&k| FusedIndex::h2(k) == h)
            .take(20)
            .collect();
        assert!(twins.len() >= 2, "no h2 collisions found");
        for (v, &k) in twins.iter().enumerate() {
            t.insert(k, v as u64 + 1);
        }
        for (v, &k) in twins.iter().enumerate() {
            assert_eq!(t.get(k), Some(v as u64 + 1), "key {k}");
        }
        t.audit().unwrap();
    }

    #[test]
    fn churn_never_degrades() {
        // Tombstone-style tables degrade when deletes equal inserts; the
        // backward-shift table must keep len and reachability exact.
        let mut t = FusedIndex::new();
        for round in 0u64..50 {
            for k in 0..64u64 {
                t.insert(round * 64 + k, k + 1);
            }
            for k in 0..64u64 {
                assert_eq!(t.remove(round * 64 + k), Some(k + 1));
            }
            assert!(t.is_empty());
        }
        t.audit().unwrap();
        // Capacity is bounded by the high-water mark, not the churn volume.
        assert!(t.capacity() <= 128, "capacity {}", t.capacity());
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut t = FusedIndex::with_capacity(100);
        let cap = t.capacity();
        for k in 0..100u64 {
            t.insert(k, 1);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap.max(FusedIndex::buckets_for(100)));
        assert_eq!(t.get(5), None);
    }

    #[test]
    fn iter_sees_every_pair() {
        let mut t = FusedIndex::new();
        for k in 0..40u64 {
            t.insert(k, k + 100);
        }
        let mut pairs: Vec<_> = t.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 40);
        for (i, &(k, v)) in pairs.iter().enumerate() {
            assert_eq!((k, v), (i as u64, i as u64 + 100));
        }
    }
}
