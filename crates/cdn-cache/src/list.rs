//! A slab-backed intrusive doubly-linked list with stable handles.
//!
//! Every queue-based cache policy needs O(1) insert-at-either-end,
//! remove-from-middle and move-to-front. `std::collections::LinkedList`
//! cannot remove interior nodes through a handle, and per-node `Box`
//! allocation would dominate simulation time; this list instead stores
//! nodes contiguously in a slab and hands out generation-checked
//! [`Handle`]s, so stale handles are detected rather than corrupting the
//! structure.
//!
//! The slab is laid out structure-of-arrays: the link words
//! (`prev`/`next`/`generation`, 12 bytes) live in one dense array and the
//! values in another, so reorder operations (`move_to_front`,
//! `promote_one`) touch only the link array — three nodes fit a cache
//! line — and never drag the payload bytes through the cache. Liveness is
//! encoded in the generation's parity (even = live, odd = free), and free
//! slots chain intrusively through their `next` link, so there is no
//! side allocation and no per-node `Option` discriminant.

const NIL: u32 = u32::MAX;

/// A stable reference to a list node. Invalidated by `remove`; reuse of the
/// slot bumps the generation so stale handles never alias a new node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    pub(crate) idx: u32,
    pub(crate) generation: u32,
}

impl Handle {
    /// Pack into a single word (`generation << 32 | idx`) for storage in a
    /// [`crate::FusedIndex`] payload. Never collides with
    /// [`crate::index::EMPTY_PAYLOAD`]: slab indices are `< u32::MAX`.
    #[inline(always)]
    pub(crate) fn pack(self) -> u64 {
        (self.generation as u64) << 32 | self.idx as u64
    }

    /// Inverse of [`Handle::pack`].
    #[inline(always)]
    pub(crate) fn unpack(word: u64) -> Handle {
        Handle {
            idx: word as u32,
            generation: (word >> 32) as u32,
        }
    }
}

/// Link words of one slab node: 12 bytes, so a 64-byte cache line covers
/// five nodes' worth of reorder traffic.
#[derive(Debug, Clone, Copy)]
struct Link {
    prev: u32,
    next: u32,
    /// Even = slot live, odd = slot free. Handles are only minted for live
    /// slots, so generation equality alone proves liveness to `check`.
    generation: u32,
}

const _: () = assert!(std::mem::size_of::<Link>() == 12);

/// Doubly-linked list over a structure-of-arrays slab. Front = MRU end,
/// back = LRU end by the conventions used throughout this workspace.
///
/// `T: Copy` is required so freed slots can simply leave their stale value
/// in place (never readable again: the generation check rejects stale
/// handles) instead of paying an `Option` discriminant per node.
#[derive(Debug, Clone)]
pub struct LinkedSlab<T> {
    links: Vec<Link>,
    values: Vec<T>,
    /// Head of the intrusive free chain (through `Link::next`).
    free_head: u32,
    free_len: usize,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T: Copy> Default for LinkedSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> LinkedSlab<T> {
    /// Empty list.
    pub fn new() -> Self {
        LinkedSlab {
            links: Vec::new(),
            values: Vec::new(),
            free_head: NIL,
            free_len: 0,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Empty list with room for `cap` nodes before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        LinkedSlab {
            links: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
            free_head: NIL,
            free_len: 0,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True heap footprint of the slab (for policy memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.links.capacity() * std::mem::size_of::<Link>()
            + self.values.capacity() * std::mem::size_of::<T>()
    }

    fn alloc(&mut self, value: T) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let link = &mut self.links[idx as usize];
            debug_assert!(link.generation % 2 == 1, "free slot with live parity");
            self.free_head = link.next;
            self.free_len -= 1;
            link.generation = link.generation.wrapping_add(1); // odd → even: live
            link.prev = NIL;
            link.next = NIL;
            self.values[idx as usize] = value;
            idx
        } else {
            let idx = self.links.len() as u32;
            assert!(idx < NIL, "LinkedSlab overflow");
            self.links.push(Link {
                prev: NIL,
                next: NIL,
                generation: 0,
            });
            self.values.push(value);
            idx
        }
    }

    #[inline]
    fn release(&mut self, idx: u32) {
        let link = &mut self.links[idx as usize];
        link.generation = link.generation.wrapping_add(1); // even → odd: free
        link.next = self.free_head;
        self.free_head = idx;
        self.free_len += 1;
    }

    #[inline]
    fn handle(&self, idx: u32) -> Handle {
        Handle {
            idx,
            generation: self.links[idx as usize].generation,
        }
    }

    #[inline]
    fn check(&self, h: Handle) -> u32 {
        // Handles are only minted with even (live) generations, so a bare
        // equality test also proves the slot has not been freed since.
        assert!(
            self.links[h.idx as usize].generation == h.generation,
            "stale LinkedSlab handle"
        );
        h.idx
    }

    /// True if `h` still refers to a live node.
    pub fn is_valid(&self, h: Handle) -> bool {
        (h.idx as usize) < self.links.len()
            && self.links[h.idx as usize].generation == h.generation
            && h.generation.is_multiple_of(2)
    }

    /// Insert at the front (MRU end). O(1).
    pub fn push_front(&mut self, value: T) -> Handle {
        let idx = self.alloc(value);
        self.links[idx as usize].next = self.head;
        if self.head != NIL {
            self.links[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
        self.handle(idx)
    }

    /// Insert at the back (LRU end). O(1).
    pub fn push_back(&mut self, value: T) -> Handle {
        let idx = self.alloc(value);
        self.links[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.links[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.len += 1;
        self.handle(idx)
    }

    /// Insert immediately before the node at `h`. O(1).
    pub fn insert_before(&mut self, h: Handle, value: T) -> Handle {
        let at = self.check(h);
        let prev = self.links[at as usize].prev;
        if prev == NIL {
            return self.push_front(value);
        }
        let idx = self.alloc(value);
        self.links[idx as usize].prev = prev;
        self.links[idx as usize].next = at;
        self.links[prev as usize].next = idx;
        self.links[at as usize].prev = idx;
        self.len += 1;
        self.handle(idx)
    }

    /// Insert immediately after the node at `h`. O(1).
    pub fn insert_after(&mut self, h: Handle, value: T) -> Handle {
        let at = self.check(h);
        let next = self.links[at as usize].next;
        if next == NIL {
            return self.push_back(value);
        }
        let idx = self.alloc(value);
        self.links[idx as usize].prev = at;
        self.links[idx as usize].next = next;
        self.links[at as usize].next = idx;
        self.links[next as usize].prev = idx;
        self.len += 1;
        self.handle(idx)
    }

    #[inline]
    fn unlink(&mut self, idx: u32) {
        let Link { prev, next, .. } = self.links[idx as usize];
        if prev != NIL {
            self.links[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.links[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Remove the node at `h`, returning its value. Invalidates `h`. O(1).
    pub fn remove(&mut self, h: Handle) -> T {
        let idx = self.check(h);
        self.unlink(idx);
        let value = self.values[idx as usize];
        self.release(idx);
        self.len -= 1;
        value
    }

    /// Remove from the back (LRU end). O(1).
    pub fn pop_back(&mut self) -> Option<T> {
        if self.tail == NIL {
            return None;
        }
        let h = self.handle(self.tail);
        Some(self.remove(h))
    }

    /// Remove from the front (MRU end). O(1).
    pub fn pop_front(&mut self) -> Option<T> {
        if self.head == NIL {
            return None;
        }
        let h = self.handle(self.head);
        Some(self.remove(h))
    }

    /// Move the node at `h` to the front. O(1). The handle stays valid.
    pub fn move_to_front(&mut self, h: Handle) {
        let idx = self.check(h);
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.links[idx as usize].prev = NIL;
        self.links[idx as usize].next = self.head;
        if self.head != NIL {
            self.links[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Move the node at `h` to the back. O(1). The handle stays valid.
    pub fn move_to_back(&mut self, h: Handle) {
        let idx = self.check(h);
        if self.tail == idx {
            return;
        }
        self.unlink(idx);
        self.links[idx as usize].next = NIL;
        self.links[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.links[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    /// Swap the node one step toward the front (PIPP's promote-by-one). O(1).
    /// No-op if already at the front.
    pub fn promote_one(&mut self, h: Handle) {
        let idx = self.check(h);
        let prev = self.links[idx as usize].prev;
        if prev == NIL {
            return;
        }
        // Unlink idx and re-insert before prev.
        self.unlink(idx);
        let prev_prev = self.links[prev as usize].prev;
        self.links[idx as usize].prev = prev_prev;
        self.links[idx as usize].next = prev;
        self.links[prev as usize].prev = idx;
        if prev_prev != NIL {
            self.links[prev_prev as usize].next = idx;
        } else {
            self.head = idx;
        }
    }

    /// Handle of the front node.
    pub fn front(&self) -> Option<Handle> {
        (self.head != NIL).then(|| self.handle(self.head))
    }

    /// Handle of the back node.
    pub fn back(&self) -> Option<Handle> {
        (self.tail != NIL).then(|| self.handle(self.tail))
    }

    /// Handle of the node after `h` (toward the back).
    pub fn next(&self, h: Handle) -> Option<Handle> {
        let idx = self.check(h);
        let next = self.links[idx as usize].next;
        (next != NIL).then(|| self.handle(next))
    }

    /// Handle of the node before `h` (toward the front).
    pub fn prev(&self, h: Handle) -> Option<Handle> {
        let idx = self.check(h);
        let prev = self.links[idx as usize].prev;
        (prev != NIL).then(|| self.handle(prev))
    }

    /// Shared access to the value at `h`.
    pub fn get(&self, h: Handle) -> &T {
        let idx = self.check(h);
        &self.values[idx as usize]
    }

    /// Mutable access to the value at `h`.
    pub fn get_mut(&mut self, h: Handle) -> &mut T {
        let idx = self.check(h);
        &mut self.values[idx as usize]
    }

    /// Iterate front→back.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            list: self,
            cur: self.head,
        }
    }

    /// Drop all nodes.
    pub fn clear(&mut self) {
        self.links.clear();
        self.values.clear();
        self.free_head = NIL;
        self.free_len = 0;
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    /// Structural invariant walk (O(n)). Checks that the chain from `head`
    /// is doubly-linked consistently (`prev` of each node points at its
    /// actual predecessor), terminates at `tail`, visits exactly `len` live
    /// nodes without cycling, and that the free chain holds exactly the
    /// remaining slots with free (odd) parity. Returns a description of the
    /// first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        let mut seen = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            if seen > self.links.len() {
                return Err("list: cycle detected walking head→tail".into());
            }
            let l = &self.links[cur as usize];
            if !l.generation.is_multiple_of(2) {
                return Err(format!("list: chained node {cur} has free parity"));
            }
            if l.prev != prev {
                return Err(format!(
                    "list: node {cur} has prev={} but predecessor is {prev}",
                    l.prev
                ));
            }
            prev = cur;
            cur = l.next;
            seen += 1;
        }
        if prev != self.tail {
            return Err(format!(
                "list: walk ended at {prev} but tail is {}",
                self.tail
            ));
        }
        if seen != self.len {
            return Err(format!("list: walked {seen} nodes but len is {}", self.len));
        }
        let mut free_seen = 0usize;
        let mut f = self.free_head;
        while f != NIL {
            if free_seen > self.links.len() {
                return Err("list: cycle detected walking free chain".into());
            }
            if self.links[f as usize].generation.is_multiple_of(2) {
                return Err(format!("list: free slot {f} has live parity"));
            }
            f = self.links[f as usize].next;
            free_seen += 1;
        }
        if free_seen != self.free_len {
            return Err(format!(
                "list: free chain has {free_seen} slots but free_len is {}",
                self.free_len
            ));
        }
        if self.len + self.free_len != self.links.len() {
            return Err(format!(
                "list: {} live + {} free != {} slots",
                self.len,
                self.free_len,
                self.links.len()
            ));
        }
        if self.links.len() != self.values.len() {
            return Err(format!(
                "list: {} link words but {} values",
                self.links.len(),
                self.values.len()
            ));
        }
        Ok(())
    }
}

/// Front-to-back iterator over a [`LinkedSlab`].
pub struct Iter<'a, T> {
    list: &'a LinkedSlab<T>,
    cur: u32,
}

impl<'a, T: Copy> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cur == NIL {
            return None;
        }
        let idx = self.cur as usize;
        self.cur = self.list.links[idx].next;
        Some(&self.list.values[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect<T: Copy>(l: &LinkedSlab<T>) -> Vec<T> {
        l.iter().copied().collect()
    }

    #[test]
    fn push_front_and_back() {
        let mut l = LinkedSlab::new();
        l.push_back(2);
        l.push_front(1);
        l.push_back(3);
        assert_eq!(collect(&l), vec![1, 2, 3]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn remove_middle() {
        let mut l = LinkedSlab::new();
        let _a = l.push_back('a');
        let b = l.push_back('b');
        let _c = l.push_back('c');
        assert_eq!(l.remove(b), 'b');
        assert_eq!(collect(&l), vec!['a', 'c']);
    }

    #[test]
    fn remove_ends() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        let _b = l.push_back(2);
        let c = l.push_back(3);
        assert_eq!(l.remove(a), 1);
        assert_eq!(l.remove(c), 3);
        assert_eq!(collect(&l), vec![2]);
        assert_eq!(l.front(), l.back());
    }

    #[test]
    fn pop_back_order() {
        let mut l = LinkedSlab::new();
        for i in 0..5 {
            l.push_front(i);
        }
        // Front order: 4 3 2 1 0, so pops from back give 0,1,2,3,4.
        let mut popped = Vec::new();
        while let Some(v) = l.pop_back() {
            popped.push(v);
        }
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
        assert!(l.is_empty());
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = LinkedSlab::new();
        let _a = l.push_back('a');
        let _b = l.push_back('b');
        let c = l.push_back('c');
        l.move_to_front(c);
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
        l.move_to_front(c); // already front: no-op
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
    }

    #[test]
    fn move_to_back_reorders() {
        let mut l = LinkedSlab::new();
        let a = l.push_back('a');
        let _b = l.push_back('b');
        l.move_to_back(a);
        assert_eq!(collect(&l), vec!['b', 'a']);
    }

    #[test]
    fn promote_one_swaps_with_predecessor() {
        let mut l = LinkedSlab::new();
        let _a = l.push_back('a');
        let _b = l.push_back('b');
        let c = l.push_back('c');
        l.promote_one(c);
        assert_eq!(collect(&l), vec!['a', 'c', 'b']);
        l.promote_one(c);
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
        l.promote_one(c); // at front: no-op
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
    }

    #[test]
    fn insert_before_after() {
        let mut l = LinkedSlab::new();
        let b = l.push_back('b');
        l.insert_before(b, 'a');
        l.insert_after(b, 'c');
        assert_eq!(collect(&l), vec!['a', 'b', 'c']);
        let a = l.front().unwrap();
        l.insert_before(a, 'z');
        assert_eq!(collect(&l), vec!['z', 'a', 'b', 'c']);
        let c = l.back().unwrap();
        l.insert_after(c, 'd');
        assert_eq!(collect(&l), vec!['z', 'a', 'b', 'c', 'd']);
    }

    #[test]
    fn handles_survive_unrelated_removals() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        l.remove(b);
        assert_eq!(*l.get(a), 1);
        assert_eq!(*l.get(c), 3);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        l.remove(a);
        let b = l.push_back(2); // reuses slot 0
        assert!(!l.is_valid(a));
        assert!(l.is_valid(b));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_handle_panics() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        l.remove(a);
        let _ = l.get(a);
    }

    #[test]
    fn next_prev_walk() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        assert_eq!(l.next(a), Some(b));
        assert_eq!(l.next(c), None);
        assert_eq!(l.prev(c), Some(b));
        assert_eq!(l.prev(a), None);
    }

    #[test]
    fn clear_resets() {
        let mut l = LinkedSlab::new();
        l.push_back(1);
        l.push_back(2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        l.push_back(9);
        assert_eq!(collect(&l), vec![9]);
    }

    #[test]
    fn free_chain_reuses_lifo_and_audits() {
        let mut l = LinkedSlab::new();
        let hs: Vec<_> = (0..8).map(|i| l.push_back(i)).collect();
        for &h in &hs[2..6] {
            l.remove(h);
        }
        l.audit().unwrap();
        let before = l.memory_bytes();
        for i in 10..14 {
            l.push_back(i);
        }
        l.audit().unwrap();
        assert_eq!(l.len(), 8);
        // All four freed slots were reused: no slab growth.
        assert_eq!(l.memory_bytes(), before);
    }

    #[test]
    fn handle_pack_roundtrip() {
        let h = Handle {
            idx: 12345,
            generation: 678,
        };
        assert_eq!(Handle::unpack(h.pack()), h);
    }
}
