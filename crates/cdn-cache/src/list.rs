//! A slab-backed intrusive doubly-linked list with stable handles.
//!
//! Every queue-based cache policy needs O(1) insert-at-either-end,
//! remove-from-middle and move-to-front. `std::collections::LinkedList`
//! cannot remove interior nodes through a handle, and per-node `Box`
//! allocation would dominate simulation time; this list instead stores
//! nodes contiguously in a slab (`Vec`) and hands out generation-checked
//! [`Handle`]s, so stale handles are detected rather than corrupting the
//! structure.

const NIL: u32 = u32::MAX;

/// A stable reference to a list node. Invalidated by `remove`; reuse of the
/// slot bumps the generation so stale handles never alias a new node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    idx: u32,
    generation: u32,
}

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    prev: u32,
    next: u32,
    generation: u32,
}

/// Doubly-linked list over a slab. Front = MRU end, back = LRU end by the
/// conventions used throughout this workspace.
#[derive(Debug, Clone)]
pub struct LinkedSlab<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> Default for LinkedSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LinkedSlab<T> {
    /// Empty list.
    pub fn new() -> Self {
        LinkedSlab {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Empty list with room for `cap` nodes before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        LinkedSlab {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint of the slab (for policy memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    fn alloc(&mut self, value: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            let node = &mut self.nodes[idx as usize];
            debug_assert!(node.value.is_none());
            node.value = Some(value);
            node.prev = NIL;
            node.next = NIL;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NIL, "LinkedSlab overflow");
            self.nodes.push(Node {
                value: Some(value),
                prev: NIL,
                next: NIL,
                generation: 0,
            });
            idx
        }
    }

    #[inline]
    fn handle(&self, idx: u32) -> Handle {
        Handle {
            idx,
            generation: self.nodes[idx as usize].generation,
        }
    }

    #[inline]
    fn check(&self, h: Handle) -> u32 {
        let node = &self.nodes[h.idx as usize];
        assert!(
            node.generation == h.generation && node.value.is_some(),
            "stale LinkedSlab handle"
        );
        h.idx
    }

    /// True if `h` still refers to a live node.
    pub fn is_valid(&self, h: Handle) -> bool {
        (h.idx as usize) < self.nodes.len() && {
            let node = &self.nodes[h.idx as usize];
            node.generation == h.generation && node.value.is_some()
        }
    }

    /// Insert at the front (MRU end). O(1).
    pub fn push_front(&mut self, value: T) -> Handle {
        let idx = self.alloc(value);
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
        self.handle(idx)
    }

    /// Insert at the back (LRU end). O(1).
    pub fn push_back(&mut self, value: T) -> Handle {
        let idx = self.alloc(value);
        self.nodes[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.len += 1;
        self.handle(idx)
    }

    /// Insert immediately before the node at `h`. O(1).
    pub fn insert_before(&mut self, h: Handle, value: T) -> Handle {
        let at = self.check(h);
        let prev = self.nodes[at as usize].prev;
        if prev == NIL {
            return self.push_front(value);
        }
        let idx = self.alloc(value);
        self.nodes[idx as usize].prev = prev;
        self.nodes[idx as usize].next = at;
        self.nodes[prev as usize].next = idx;
        self.nodes[at as usize].prev = idx;
        self.len += 1;
        self.handle(idx)
    }

    /// Insert immediately after the node at `h`. O(1).
    pub fn insert_after(&mut self, h: Handle, value: T) -> Handle {
        let at = self.check(h);
        let next = self.nodes[at as usize].next;
        if next == NIL {
            return self.push_back(value);
        }
        let idx = self.alloc(value);
        self.nodes[idx as usize].prev = at;
        self.nodes[idx as usize].next = next;
        self.nodes[at as usize].next = idx;
        self.nodes[next as usize].prev = idx;
        self.len += 1;
        self.handle(idx)
    }

    #[inline]
    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Remove the node at `h`, returning its value. Invalidates `h`. O(1).
    pub fn remove(&mut self, h: Handle) -> T {
        let idx = self.check(h);
        self.unlink(idx);
        let node = &mut self.nodes[idx as usize];
        let value = node.value.take().expect("checked live");
        node.generation = node.generation.wrapping_add(1);
        self.free.push(idx);
        self.len -= 1;
        value
    }

    /// Remove from the back (LRU end). O(1).
    pub fn pop_back(&mut self) -> Option<T> {
        if self.tail == NIL {
            return None;
        }
        let h = self.handle(self.tail);
        Some(self.remove(h))
    }

    /// Remove from the front (MRU end). O(1).
    pub fn pop_front(&mut self) -> Option<T> {
        if self.head == NIL {
            return None;
        }
        let h = self.handle(self.head);
        Some(self.remove(h))
    }

    /// Move the node at `h` to the front. O(1). The handle stays valid.
    pub fn move_to_front(&mut self, h: Handle) {
        let idx = self.check(h);
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Move the node at `h` to the back. O(1). The handle stays valid.
    pub fn move_to_back(&mut self, h: Handle) {
        let idx = self.check(h);
        if self.tail == idx {
            return;
        }
        self.unlink(idx);
        self.nodes[idx as usize].next = NIL;
        self.nodes[idx as usize].prev = self.tail;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    /// Swap the node one step toward the front (PIPP's promote-by-one). O(1).
    /// No-op if already at the front.
    pub fn promote_one(&mut self, h: Handle) {
        let idx = self.check(h);
        let prev = self.nodes[idx as usize].prev;
        if prev == NIL {
            return;
        }
        // Unlink idx and re-insert before prev.
        self.unlink(idx);
        let prev_prev = self.nodes[prev as usize].prev;
        self.nodes[idx as usize].prev = prev_prev;
        self.nodes[idx as usize].next = prev;
        self.nodes[prev as usize].prev = idx;
        if prev_prev != NIL {
            self.nodes[prev_prev as usize].next = idx;
        } else {
            self.head = idx;
        }
    }

    /// Handle of the front node.
    pub fn front(&self) -> Option<Handle> {
        (self.head != NIL).then(|| self.handle(self.head))
    }

    /// Handle of the back node.
    pub fn back(&self) -> Option<Handle> {
        (self.tail != NIL).then(|| self.handle(self.tail))
    }

    /// Handle of the node after `h` (toward the back).
    pub fn next(&self, h: Handle) -> Option<Handle> {
        let idx = self.check(h);
        let next = self.nodes[idx as usize].next;
        (next != NIL).then(|| self.handle(next))
    }

    /// Handle of the node before `h` (toward the front).
    pub fn prev(&self, h: Handle) -> Option<Handle> {
        let idx = self.check(h);
        let prev = self.nodes[idx as usize].prev;
        (prev != NIL).then(|| self.handle(prev))
    }

    /// Shared access to the value at `h`.
    pub fn get(&self, h: Handle) -> &T {
        let idx = self.check(h);
        self.nodes[idx as usize].value.as_ref().expect("checked")
    }

    /// Mutable access to the value at `h`.
    pub fn get_mut(&mut self, h: Handle) -> &mut T {
        let idx = self.check(h);
        self.nodes[idx as usize].value.as_mut().expect("checked")
    }

    /// Iterate front→back.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            list: self,
            cur: self.head,
        }
    }

    /// Drop all nodes.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    /// Structural invariant walk (O(n)). Checks that the chain from `head`
    /// is doubly-linked consistently (`node.prev` of each node points at its
    /// actual predecessor), terminates at `tail`, visits exactly `len` live
    /// nodes without cycling, and that every free-list slot is dead and
    /// disjoint from the chain. Returns a description of the first violated
    /// invariant.
    pub fn audit(&self) -> Result<(), String> {
        let mut seen = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            if seen > self.nodes.len() {
                return Err("list: cycle detected walking head→tail".into());
            }
            let n = &self.nodes[cur as usize];
            if n.value.is_none() {
                return Err(format!("list: chained node {cur} holds no value"));
            }
            if n.prev != prev {
                return Err(format!(
                    "list: node {cur} has prev={} but predecessor is {prev}",
                    n.prev
                ));
            }
            prev = cur;
            cur = n.next;
            seen += 1;
        }
        if prev != self.tail {
            return Err(format!(
                "list: walk ended at {prev} but tail is {}",
                self.tail
            ));
        }
        if seen != self.len {
            return Err(format!("list: walked {seen} nodes but len is {}", self.len));
        }
        for &f in &self.free {
            if self.nodes[f as usize].value.is_some() {
                return Err(format!("list: free slot {f} holds a live value"));
            }
        }
        if self.len + self.free.len() != self.nodes.len() {
            return Err(format!(
                "list: {} live + {} free != {} slots",
                self.len,
                self.free.len(),
                self.nodes.len()
            ));
        }
        Ok(())
    }
}

/// Front-to-back iterator over a [`LinkedSlab`].
pub struct Iter<'a, T> {
    list: &'a LinkedSlab<T>,
    cur: u32,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur as usize];
        self.cur = node.next;
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect<T: Clone>(l: &LinkedSlab<T>) -> Vec<T> {
        l.iter().cloned().collect()
    }

    #[test]
    fn push_front_and_back() {
        let mut l = LinkedSlab::new();
        l.push_back(2);
        l.push_front(1);
        l.push_back(3);
        assert_eq!(collect(&l), vec![1, 2, 3]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn remove_middle() {
        let mut l = LinkedSlab::new();
        let _a = l.push_back('a');
        let b = l.push_back('b');
        let _c = l.push_back('c');
        assert_eq!(l.remove(b), 'b');
        assert_eq!(collect(&l), vec!['a', 'c']);
    }

    #[test]
    fn remove_ends() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        let _b = l.push_back(2);
        let c = l.push_back(3);
        assert_eq!(l.remove(a), 1);
        assert_eq!(l.remove(c), 3);
        assert_eq!(collect(&l), vec![2]);
        assert_eq!(l.front(), l.back());
    }

    #[test]
    fn pop_back_order() {
        let mut l = LinkedSlab::new();
        for i in 0..5 {
            l.push_front(i);
        }
        // Front order: 4 3 2 1 0, so pops from back give 0,1,2,3,4.
        let mut popped = Vec::new();
        while let Some(v) = l.pop_back() {
            popped.push(v);
        }
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
        assert!(l.is_empty());
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = LinkedSlab::new();
        let _a = l.push_back('a');
        let _b = l.push_back('b');
        let c = l.push_back('c');
        l.move_to_front(c);
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
        l.move_to_front(c); // already front: no-op
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
    }

    #[test]
    fn move_to_back_reorders() {
        let mut l = LinkedSlab::new();
        let a = l.push_back('a');
        let _b = l.push_back('b');
        l.move_to_back(a);
        assert_eq!(collect(&l), vec!['b', 'a']);
    }

    #[test]
    fn promote_one_swaps_with_predecessor() {
        let mut l = LinkedSlab::new();
        let _a = l.push_back('a');
        let _b = l.push_back('b');
        let c = l.push_back('c');
        l.promote_one(c);
        assert_eq!(collect(&l), vec!['a', 'c', 'b']);
        l.promote_one(c);
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
        l.promote_one(c); // at front: no-op
        assert_eq!(collect(&l), vec!['c', 'a', 'b']);
    }

    #[test]
    fn insert_before_after() {
        let mut l = LinkedSlab::new();
        let b = l.push_back('b');
        l.insert_before(b, 'a');
        l.insert_after(b, 'c');
        assert_eq!(collect(&l), vec!['a', 'b', 'c']);
        let a = l.front().unwrap();
        l.insert_before(a, 'z');
        assert_eq!(collect(&l), vec!['z', 'a', 'b', 'c']);
        let c = l.back().unwrap();
        l.insert_after(c, 'd');
        assert_eq!(collect(&l), vec!['z', 'a', 'b', 'c', 'd']);
    }

    #[test]
    fn handles_survive_unrelated_removals() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        l.remove(b);
        assert_eq!(*l.get(a), 1);
        assert_eq!(*l.get(c), 3);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        l.remove(a);
        let b = l.push_back(2); // reuses slot 0
        assert!(!l.is_valid(a));
        assert!(l.is_valid(b));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_handle_panics() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        l.remove(a);
        let _ = l.get(a);
    }

    #[test]
    fn next_prev_walk() {
        let mut l = LinkedSlab::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        assert_eq!(l.next(a), Some(b));
        assert_eq!(l.next(c), None);
        assert_eq!(l.prev(c), Some(b));
        assert_eq!(l.prev(a), None);
    }

    #[test]
    fn clear_resets() {
        let mut l = LinkedSlab::new();
        l.push_back(1);
        l.push_back(2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        l.push_back(9);
        assert_eq!(collect(&l), vec![9]);
    }
}
