//! Property-based differential of [`FusedIndex`] against `FxHashMap`.
//!
//! The open-addressing table earns its place in the hot path only if it
//! is indistinguishable from a hashmap under every op mix — including the
//! nasty ones: backward-shift deletion in long probe chains, growth mid-
//! sequence, and sustained insert/remove churn at full load (which a
//! tombstone scheme would slowly poison, and which backward-shift must
//! survive with zero dead buckets).

use cdn_cache::{FusedIndex, FxHashMap};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum IndexOp {
    /// Insert or overwrite `key -> payload`.
    Insert(u64, u64),
    /// Look up a key (drawn from a small range so hits are common).
    Get(u64),
    /// Remove a key.
    Remove(u64),
    /// Insert a burst of sequential keys, forcing at least one grow.
    Burst(u64, u8),
    /// Drop every key, exercising the rebuild-from-zero path.
    Clear,
}

/// Keys cluster in [0, 64) so inserts/removes/gets collide with each
/// other, with occasional extreme keys (u64::MAX is a valid key: the
/// empty sentinel lives on the payload word, not the key word).
fn key() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..64, 0u64..64, 0u64..64, Just(u64::MAX), any::<u64>(),]
}

fn index_op() -> impl Strategy<Value = IndexOp> {
    prop_oneof![
        (key(), 0u64..u64::MAX).prop_map(|(k, v)| IndexOp::Insert(k, v)),
        (key(), 0u64..u64::MAX).prop_map(|(k, v)| IndexOp::Insert(k, v)),
        (key(), 0u64..u64::MAX).prop_map(|(k, v)| IndexOp::Insert(k, v)),
        key().prop_map(IndexOp::Get),
        key().prop_map(IndexOp::Get),
        key().prop_map(IndexOp::Remove),
        key().prop_map(IndexOp::Remove),
        (any::<u64>(), any::<u8>()).prop_map(|(k, n)| IndexOp::Burst(k, n)),
        Just(IndexOp::Clear),
    ]
}

fn check_agreement(real: &FusedIndex, model: &FxHashMap<u64, u64>) {
    prop_assert_eq!(real.len(), model.len());
    prop_assert_eq!(real.is_empty(), model.is_empty());
    for (&k, &v) in model.iter() {
        prop_assert_eq!(real.get(k), Some(v));
        prop_assert!(real.contains(k));
    }
    let mut seen: FxHashMap<u64, u64> = FxHashMap::default();
    for (k, v) in real.iter() {
        prop_assert_eq!(seen.insert(k, v), None, "iter yielded duplicate key");
        prop_assert_eq!(model.get(&k), Some(&v));
    }
    prop_assert_eq!(seen.len(), model.len());
    real.audit().unwrap();
}

proptest! {
    /// FusedIndex agrees with FxHashMap under random insert/get/remove
    /// mixes, with growth and full clears interleaved.
    #[test]
    fn fused_index_matches_hashmap(ops in proptest::collection::vec(index_op(), 1..250)) {
        let mut real = FusedIndex::new();
        let mut model: FxHashMap<u64, u64> = FxHashMap::default();
        for op in ops {
            match op {
                IndexOp::Insert(k, v) => {
                    prop_assert_eq!(real.insert(k, v), model.insert(k, v));
                }
                IndexOp::Get(k) => {
                    prop_assert_eq!(real.get(k), model.get(&k).copied());
                    prop_assert_eq!(real.contains(k), model.contains_key(&k));
                }
                IndexOp::Remove(k) => {
                    prop_assert_eq!(real.remove(k), model.remove(&k));
                }
                IndexOp::Burst(base, n) => {
                    for d in 0..=(n as u64) {
                        let k = base.wrapping_add(d);
                        prop_assert_eq!(real.insert(k, d), model.insert(k, d));
                    }
                }
                IndexOp::Clear => {
                    real.clear();
                    model.clear();
                }
            }
            real.audit().unwrap();
        }
        check_agreement(&real, &model);
    }

    /// Backward-shift deletion keeps every surviving key reachable even
    /// when the table is a single dense probe chain: keys that all hash
    /// near each other are inserted, then removed in arbitrary order.
    #[test]
    fn backward_shift_preserves_dense_chains(
        n in 4usize..48,
        remove_order in proptest::collection::vec(any::<usize>(), 1..64),
    ) {
        // Sequential keys multiplied by the fibonacci constant land on
        // scattered home slots; to force collisions, use keys that are
        // inverse-multiples so their homes cluster. Simplest adversarial
        // input: insert enough keys that chains necessarily overlap at
        // high load, then delete from the middle.
        let mut real = FusedIndex::with_capacity(n);
        let mut model: FxHashMap<u64, u64> = FxHashMap::default();
        let mut keys: Vec<u64> = Vec::new();
        for j in 0..n as u64 {
            let k = j.wrapping_mul(0x5851_F42D_4C95_7F2D);
            real.insert(k, j);
            model.insert(k, j);
            keys.push(k);
        }
        real.audit().unwrap();
        for pick in remove_order {
            if keys.is_empty() {
                break;
            }
            let k = keys.swap_remove(pick % keys.len());
            prop_assert_eq!(real.remove(k), model.remove(&k));
            real.audit().unwrap();
            // Every survivor must still resolve after the shift.
            for &s in &keys {
                prop_assert_eq!(real.get(s), model.get(&s).copied());
            }
        }
        check_agreement(&real, &model);
    }

    /// Tombstone-free churn: at a fixed population, insert/remove cycles
    /// must never degrade the table (no dead buckets accumulate, capacity
    /// stays bounded, lookups stay exact).
    #[test]
    fn full_table_churn_never_degrades(
        pop in 8usize..64,
        rounds in 1usize..40,
    ) {
        let mut real = FusedIndex::new();
        let mut model: FxHashMap<u64, u64> = FxHashMap::default();
        for j in 0..pop as u64 {
            real.insert(j, j);
            model.insert(j, j);
        }
        let settled_capacity = real.capacity();
        for r in 0..rounds as u64 {
            // Replace one resident key with a fresh one each round.
            let old = r % pop as u64;
            let fresh = 1_000_000 + r;
            prop_assert_eq!(real.remove(old), model.remove(&old));
            prop_assert_eq!(real.insert(fresh, r), model.insert(fresh, r));
            prop_assert_eq!(real.remove(fresh), model.remove(&fresh));
            prop_assert_eq!(real.insert(old, old), model.insert(old, old));
            real.audit().unwrap();
            // Population is constant, so a tombstone-free table must not
            // grow: churn leaves zero dead buckets behind.
            prop_assert_eq!(real.capacity(), settled_capacity);
        }
        check_agreement(&real, &model);
    }
}

/// Not a property test: a same-binary timing comparison of the fused
/// index against `FxHashMap` on a replay-shaped op mix (ignored by
/// default; run with `--release -- --ignored --nocapture` when tuning).
#[test]
#[ignore]
fn index_microbench() {
    const RESIDENTS: u64 = 50_148;
    const OPS: u64 = 4_000_000;

    fn mix(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }

    macro_rules! run {
        ($name:expr, $map:ident, $get:ident, $remove:ident, $insert:ident) => {{
            let start = std::time::Instant::now();
            let mut next_new = RESIDENTS;
            let mut evict = 0u64;
            let mut hits = 0u64;
            for i in 0..OPS {
                let r = mix(i);
                if r & 1 == 0 {
                    // Hit path: probe a random resident key.
                    let span = next_new - evict;
                    if $map.$get(evict + r % span).is_some() {
                        hits += 1;
                    }
                } else {
                    // Miss path: failed probe, evict oldest, admit new.
                    let _ = $map.$get(next_new);
                    $map.$remove(evict);
                    $map.$insert(next_new, next_new + 1);
                    evict += 1;
                    next_new += 1;
                }
            }
            let ns = start.elapsed().as_nanos() as f64 / OPS as f64;
            eprintln!("{:>10}: {ns:6.1} ns/op ({hits} hits)", $name);
        }};
    }

    let mut fused = FusedIndex::new();
    for k in 0..RESIDENTS {
        fused.insert(k, k + 1);
    }
    run!("fused", fused, get, remove, insert);

    struct MapShim(FxHashMap<u64, u64>);
    impl MapShim {
        fn get(&self, k: u64) -> Option<u64> {
            self.0.get(&k).copied()
        }
        fn remove(&mut self, k: u64) -> Option<u64> {
            self.0.remove(&k)
        }
        fn insert(&mut self, k: u64, v: u64) -> Option<u64> {
            self.0.insert(k, v)
        }
    }
    let mut map = MapShim(FxHashMap::default());
    for k in 0..RESIDENTS {
        map.insert(k, k + 1);
    }
    run!("fxhashmap", map, get, remove, insert);
}

/// Not a property test: a same-binary, interleaved A-B timing of the two
/// hit-path idioms on `LruQueue` — the triple probe
/// (`contains` → `record_hit` → `promote_to_mru`, three index lookups)
/// that TinyLFU shipped with through PR 5, against the handle-based
/// single probe (`lookup` → `record_hit_at` → `promote_to_mru_at`) that
/// replaced it. Interleaving A and B each round cancels slow load drift
/// on a shared box, which whole-bench before/after numbers cannot
/// (ignored by default; run with `--release -- --ignored --nocapture`).
#[test]
#[ignore]
fn hit_path_probe_count_microbench() {
    use cdn_cache::LruQueue;
    const RESIDENTS: u64 = 50_000;
    const OPS: u64 = 4_000_000;
    const ROUNDS: usize = 5;

    fn mix(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }

    let fresh = || {
        let mut q = LruQueue::new(u64::MAX);
        for k in 0..RESIDENTS {
            q.insert_mru(cdn_cache::ObjectId(k), 1, k);
        }
        q
    };
    let mut best_triple = f64::MAX;
    let mut best_single = f64::MAX;
    for round in 0..ROUNDS {
        for side in 0..2 {
            // Alternate which side goes first each round.
            let triple_side = (round + side) % 2 == 0;
            let mut q = fresh();
            let start = std::time::Instant::now();
            let mut hits = 0u64;
            for i in 0..OPS {
                let id = cdn_cache::ObjectId(mix(i) % RESIDENTS);
                if triple_side {
                    if q.contains(id) {
                        q.record_hit(id, i);
                        q.promote_to_mru(id);
                        hits += 1;
                    }
                } else if let Some(h) = q.lookup(id) {
                    q.record_hit_at(h, i);
                    q.promote_to_mru_at(h);
                    hits += 1;
                }
            }
            let ns = start.elapsed().as_nanos() as f64 / OPS as f64;
            assert_eq!(hits, OPS);
            if triple_side {
                best_triple = best_triple.min(ns);
            } else {
                best_single = best_single.min(ns);
            }
        }
    }
    eprintln!(
        "hit path: triple-probe {best_triple:.1} ns/hit vs single-probe \
         {best_single:.1} ns/hit ({:.2}x)",
        best_triple / best_single
    );
}
