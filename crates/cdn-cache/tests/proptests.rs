//! Property-based tests for the cache substrate: the slab list is checked
//! against a `VecDeque` reference model, and the queues' byte accounting
//! invariants are exercised with random operation sequences.

use cdn_cache::ghost::GhostEntry;
use cdn_cache::{GhostList, LinkedSlab, LruQueue, ObjectId, SegmentedQueue};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ListOp {
    PushFront(u32),
    PushBack(u32),
    PopFront,
    PopBack,
    MoveToFront(usize),
    MoveToBack(usize),
    Remove(usize),
    PromoteOne(usize),
}

fn list_op() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        any::<u32>().prop_map(ListOp::PushFront),
        any::<u32>().prop_map(ListOp::PushBack),
        Just(ListOp::PopFront),
        Just(ListOp::PopBack),
        any::<usize>().prop_map(ListOp::MoveToFront),
        any::<usize>().prop_map(ListOp::MoveToBack),
        any::<usize>().prop_map(ListOp::Remove),
        any::<usize>().prop_map(ListOp::PromoteOne),
    ]
}

proptest! {
    /// LinkedSlab behaves exactly like a VecDeque under a random op mix.
    #[test]
    fn linked_slab_matches_vecdeque(ops in proptest::collection::vec(list_op(), 1..200)) {
        use std::collections::VecDeque;
        let mut list = LinkedSlab::new();
        let mut model: VecDeque<u32> = VecDeque::new();
        // Track handles in model (front-to-back) order.
        let mut handles: VecDeque<cdn_cache::Handle> = VecDeque::new();

        for op in ops {
            match op {
                ListOp::PushFront(v) => {
                    handles.push_front(list.push_front(v));
                    model.push_front(v);
                }
                ListOp::PushBack(v) => {
                    handles.push_back(list.push_back(v));
                    model.push_back(v);
                }
                ListOp::PopFront => {
                    prop_assert_eq!(list.pop_front(), model.pop_front());
                    handles.pop_front();
                }
                ListOp::PopBack => {
                    prop_assert_eq!(list.pop_back(), model.pop_back());
                    handles.pop_back();
                }
                ListOp::MoveToFront(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        let h = handles.remove(i).unwrap();
                        let v = model.remove(i).unwrap();
                        list.move_to_front(h);
                        handles.push_front(h);
                        model.push_front(v);
                    }
                }
                ListOp::MoveToBack(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        let h = handles.remove(i).unwrap();
                        let v = model.remove(i).unwrap();
                        list.move_to_back(h);
                        handles.push_back(h);
                        model.push_back(v);
                    }
                }
                ListOp::Remove(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        let h = handles.remove(i).unwrap();
                        let v = model.remove(i).unwrap();
                        prop_assert_eq!(list.remove(h), v);
                    }
                }
                ListOp::PromoteOne(i) => {
                    if !model.is_empty() {
                        let i = i % model.len();
                        let h = handles[i];
                        list.promote_one(h);
                        if i > 0 {
                            handles.swap(i, i - 1);
                            model.swap(i, i - 1);
                        }
                    }
                }
            }
            prop_assert_eq!(list.len(), model.len());
            let got: Vec<u32> = list.iter().copied().collect();
            let want: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
        }
    }

    /// LruQueue never exceeds capacity when evictions are honoured, and its
    /// byte accounting matches a recomputed sum.
    #[test]
    fn lru_queue_byte_accounting(
        ops in proptest::collection::vec((0u64..50, 1u64..200, any::<bool>()), 1..300)
    ) {
        let capacity = 1000u64;
        let mut q = LruQueue::new(capacity);
        for (tick, (id, size, at_mru)) in ops.into_iter().enumerate() {
            let id = ObjectId(id);
            if q.contains(id) {
                q.record_hit(id, tick as u64);
                q.promote_to_mru(id);
            } else if size <= capacity {
                while q.needs_eviction_for(size) {
                    prop_assert!(q.evict_lru().is_some());
                }
                if at_mru {
                    q.insert_mru(id, size, tick as u64);
                } else {
                    q.insert_lru(id, size, tick as u64);
                }
            }
            prop_assert!(q.used_bytes() <= capacity);
            let recomputed: u64 = q.iter().map(|m| m.size).sum();
            prop_assert_eq!(recomputed, q.used_bytes());
            prop_assert_eq!(q.iter().count(), q.len());
        }
    }

    /// GhostList stays within its byte budget and membership matches its
    /// iterated contents.
    #[test]
    fn ghost_list_budget(
        ops in proptest::collection::vec((0u64..40, 1u64..150), 1..300)
    ) {
        let budget = 500u64;
        let mut g = GhostList::new(budget);
        for (tick, (id, size)) in ops.into_iter().enumerate() {
            g.add(GhostEntry {
                id: ObjectId(id),
                size,
                evicted_tick: tick as u64,
                tag: 0,
            });
            prop_assert!(g.used_bytes() <= budget);
            let sum: u64 = g.iter().map(|e| e.size).sum();
            prop_assert_eq!(sum, g.used_bytes());
            for e in g.iter() {
                prop_assert!(g.contains(e.id));
            }
        }
    }

    /// SegmentedQueue conserves bytes: inserted = resident + evicted, and
    /// per-segment budgets hold after every insert.
    #[test]
    fn segmented_queue_conservation(
        n_segments in 1usize..5,
        ops in proptest::collection::vec((0u64..60, 1u64..100, 0usize..8), 1..200)
    ) {
        let capacity = 800u64;
        let mut q = SegmentedQueue::equal(capacity, n_segments);
        let mut inserted = 0u64;
        let mut evicted = 0u64;
        for (tick, (id, size, seg)) in ops.into_iter().enumerate() {
            let id = ObjectId(id);
            let seg = seg % n_segments;
            if q.contains(id) {
                let target = (q.segment_of(id).unwrap() + 1).min(n_segments - 1);
                for v in q.hit_move_to(id, target, tick as u64) {
                    evicted += v.size;
                }
            } else {
                inserted += size;
                for v in q.insert(seg, id, size, tick as u64) {
                    evicted += v.size;
                }
            }
            prop_assert_eq!(q.used_bytes(), inserted - evicted);
            prop_assert!(q.used_bytes() <= capacity);
        }
    }
}
