#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), and the
# full workspace test suite — then the same tests once more with the
# fault-injection failpoints compiled in, so the recovery paths (panic
# isolation, retry, checkpoint/resume, corrupt-trace detection, daemon
# shard supervision) are proven on every run, and the model-based differential harness once more with
# per-request invariant audits compiled in (`--features audit`; the test
# profile already builds with overflow-checks). Run from anywhere; always
# executes at the repo root. This is what CI should run on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy --features fault-injection (-D warnings)"
cargo clippy -p cdn-sim --all-targets --features fault-injection -- -D warnings
cargo clippy -p tdc --all-targets --features fault-injection -- -D warnings
cargo clippy -p cdnd --all-targets --features fault-injection -- -D warnings

echo "==> cargo test --features fault-injection"
cargo test -q -p cdn-cache --features fault-injection
cargo test -q -p cdn-trace --features fault-injection
cargo test -q -p cdn-sim --features fault-injection
cargo test -q -p tdc --features fault-injection
cargo test -q -p cdnd --features fault-injection

echo "==> cargo clippy --features audit (-D warnings)"
cargo clippy -p cdn-sim --all-targets --features audit -- -D warnings

echo "==> model-based differential harness --features audit"
cargo test -q -p cdn-sim --features audit --test model_check

echo "==> golden outcome streams --features audit (bit-identical policies)"
cargo test -q -p cdn-sim --features audit --test golden_outcomes

echo "==> sharded-replay exactness (partition proptests + threaded==serial + goldens)"
cargo test -q -p cdn-trace --test shard_prop
cargo test -q -p cdn-sim --features audit --test shard_check

echo "==> pipelined-batch identity --features audit (hints never change outcomes)"
cargo test -q -p cdn-sim --features audit --test batched_identity

echo "==> fig6_chaos calm gate (exits nonzero if calm != plain path)"
TDC_CHAOS_REQUESTS=20000 TDC_CHAOS_SEED=7 \
    cargo run --release -q -p cdn-sim --bin fig6_chaos

echo "==> snapshot fault-injection suite (torn-tail, byte-flip corpus, load errors)"
cargo test -q -p cdnd --features fault-injection --test snapshot_check

echo "==> drift-generator suite (flash crowd / rotation / cycle sanity + determinism)"
cargo test -q -p cdn-trace --test drift_check

echo "==> BoundedRing model check (FIFO + exact peak depth under crash-return)"
cargo test -q -p cdnd --test ring_prop

echo "==> failover-routing suite (route failpoint, routing-off inertness, routed oracle)"
cargo test -q -p cdnd --features fault-injection --test routing_check

echo "==> cdnd_chaos daemon gate (calm, calm-routed, calm-snap, kill, warm-restart,"
echo "    corruption ladder, flash-crowd x kill-2x failover; exits nonzero on any gate)"
CDND_CHAOS_REQUESTS=60000 \
    cargo run --release -q -p cdnd --features fault-injection --bin cdnd_chaos >/dev/null

echo "==> streamed-replay identity suite (all policies u64-identical to in-RAM)"
cargo test -q -p cdn-sim --test stream_identity

echo "==> streamed daemon-feed suite (batched submit + on-disk feed, ledger-exact)"
cargo test -q -p cdnd --test feed_stream

# Entry-layout size budgets (hot node <= 32 B etc.) are const-asserted in
# cdn-cache (index.rs/list.rs/queue.rs), so every build above already
# enforces them; a layout regression fails compilation, not this script.
echo "==> replay_bench smoke (50k requests, 2-shard scaling, throw-away output)"
REPLAY_BENCH_REQUESTS=50000 REPLAY_SHARDS=1,2 \
    REPLAY_BENCH_OUT="$(mktemp /tmp/bench_smoke.XXXXXX.json)" \
    cargo run --release -q -p cdn-sim --bin replay_bench >/dev/null

echo "==> out-of-core smoke: streamed peak RSS must undercut the in-RAM half"
# Two runs of the same corpus size in separate processes (VmHWM is
# per-process and monotone): one replays from disk through the prefetch
# pipeline, one loads the trace in RAM. The streamed half holding the
# whole trace resident would show up here as rss_stream >= rss_inram.
STREAM_SMOKE_DIR="$(mktemp -d /tmp/stream_smoke.XXXXXX)"
# The corpus dir must not be the report dir (replay_bench removes
# REPLAY_STREAM_DIR on cleanup), and the streamed half must skip the
# identity phase — that phase loads the trace in RAM for the ledger
# comparison, which would inflate the very RSS this smoke measures
# (the identity gate itself runs in the stream_identity suite above).
REPLAY_STREAM_SMALL=400000 REPLAY_STREAM_REQUESTS=0 REPLAY_STREAM_IDENTITY=0 \
    REPLAY_STREAM_DIR="$STREAM_SMOKE_DIR/corpus" \
    REPLAY_STREAM_OUT="$STREAM_SMOKE_DIR/stream.json" \
    cargo run --release -q -p cdn-sim --bin replay_bench -- --stream >/dev/null
REPLAY_STREAM_SMALL=400000 REPLAY_STREAM_REQUESTS=0 REPLAY_STREAM_INRAM=1 \
    REPLAY_STREAM_DIR="$STREAM_SMOKE_DIR/corpus" \
    REPLAY_STREAM_OUT="$STREAM_SMOKE_DIR/inram.json" \
    cargo run --release -q -p cdn-sim --bin replay_bench -- --stream >/dev/null
awk '
    /"peak_rss_bytes"/ {
        gsub(/[^0-9]/, "", $2)
        if (FILENAME ~ /stream.json/) stream = $2; else inram = $2
    }
    END {
        if (stream == "" || inram == "") { print "rss smoke: VmHWM unavailable, comparison skipped (not fabricated)"; exit 0 }
        printf "rss smoke: streamed %.1f MiB vs in-RAM %.1f MiB\n", stream / 1048576, inram / 1048576
        if (stream + 0 >= inram + 0) { print "FAIL: streamed replay peak RSS not below the in-RAM half"; exit 1 }
    }
' "$STREAM_SMOKE_DIR/stream.json" "$STREAM_SMOKE_DIR/inram.json"
rm -rf "$STREAM_SMOKE_DIR"

echo "OK"
