#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), and the
# full workspace test suite. Run from anywhere; always executes at the
# repo root. This is what CI should run on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "OK"
