#!/usr/bin/env bash
# Build the workspace in release mode and run the replay-engine
# throughput harness. Writes BENCH_replay.json at the repo root; if a
# previous BENCH_replay.json exists it is kept as *.prev.json and the
# sweep aggregate throughput is compared against it. A missing baseline
# (first run, fresh clone) is fine — the comparison is simply skipped.
#
# Knobs (env):
#   REPLAY_BENCH_REQUESTS  trace length (default 2,000,000)
#   REPRO_SEED             trace seed (default 42)
#   REPLAY_BENCH_OUT       output path (default BENCH_replay.json)
#   REPLAY_BENCH_TRACE     replay a .bin/.csv trace file instead of
#                          generating one
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${REPLAY_BENCH_OUT:-BENCH_replay.json}"
BASELINE=""
if [[ -f "$OUT" ]]; then
    BASELINE="${OUT%.json}.prev.json"
    cp "$OUT" "$BASELINE"
    echo "baseline: previous $OUT saved as $BASELINE"
else
    echo "baseline: no previous $OUT — first run, skipping comparison"
fi

cargo build --release -p cdn-sim --bin replay_bench
cargo run --release -q -p cdn-sim --bin replay_bench

if [[ -n "$BASELINE" && -f "$BASELINE" ]]; then
    extract() {
        grep -o '"aggregate_requests_per_sec": [0-9.]*' "$1" | awk '{print $2}'
    }
    prev="$(extract "$BASELINE" || true)"
    cur="$(extract "$OUT" || true)"
    if [[ -n "$prev" && -n "$cur" ]]; then
        awk -v p="$prev" -v c="$cur" 'BEGIN {
            printf "sweep aggregate vs baseline: %.2f -> %.2f Mreq/s (%+.1f%%)\n",
                p / 1e6, c / 1e6, (c - p) / p * 100
        }'
    else
        echo "baseline present but not comparable; skipping comparison"
    fi
fi
