#!/usr/bin/env bash
# Build the workspace in release mode and run the replay-engine
# throughput harness. Writes BENCH_replay.json at the repo root.
#
# Knobs (env):
#   REPLAY_BENCH_REQUESTS  trace length (default 2,000,000)
#   REPRO_SEED             trace seed (default 42)
#   REPLAY_BENCH_OUT       output path (default BENCH_replay.json)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p cdn-sim --bin replay_bench
exec cargo run --release -q -p cdn-sim --bin replay_bench
