#!/usr/bin/env bash
# Build the workspace in release mode and run the replay-engine
# throughput harness. Writes BENCH_replay.json at the repo root; if a
# previous BENCH_replay.json exists it is kept as *.prev.json and the
# sweep aggregate throughput is compared against it. A missing baseline
# (first run, fresh clone) is fine — the comparison is simply skipped.
#
# Usage:
#   scripts/bench.sh              measure and report (never fails on perf)
#   scripts/bench.sh --gate       additionally FAIL (exit 1) if any
#                                 policy's requests/sec — or any
#                                 (policy × shard count) aggregate —
#                                 regressed more than 10% vs the committed
#                                 baseline
#   scripts/bench.sh --shards N   shard counts for the scaling section
#                                 (comma list, e.g. 1,2,4; sets
#                                 REPLAY_SHARDS). Composable with --gate.
#   scripts/bench.sh --stream     bench the out-of-core streaming engine
#                                 instead of the in-RAM replay: writes
#                                 BENCH_stream.json (replay_stream_bench_v1:
#                                 small streamed points, big-corpus
#                                 flat-RSS section, in-RAM identity +
#                                 pipeline-bound ratio). The absolute
#                                 gates — peak RSS within 2x of the small
#                                 replay, streamed ledgers u64-identical,
#                                 throughput >= 85% of the achievable
#                                 pipeline bound — live inside the binary
#                                 and fail every run, baseline or not.
#                                 With --gate, additionally fails if a
#                                 streamed (policy x requests) point
#                                 regressed beyond the shared tolerance
#                                 vs the committed baseline; a baseline
#                                 from before this schema is reported
#                                 explicitly and skipped, never silently.
#   scripts/bench.sh --daemon     bench the cdnd daemon serving path
#                                 instead of the replay engine: writes
#                                 BENCH_daemon.json (schema v3: shard
#                                 scaling with per-point availability +
#                                 warm_restart section + admission
#                                 brownout drill) and, with --gate,
#                                 fails on any (policy × shards) daemon
#                                 throughput regression beyond the same
#                                 tolerance or on a policy whose warm
#                                 restart support regressed to
#                                 unsupported. Availability must be
#                                 exactly 1.0 per serving point and the
#                                 admission drill exact on every run
#                                 (absolute gates, no baseline needed).
#                                 A schema-v1/v2 baseline missing the
#                                 newer sections is reported explicitly
#                                 and that comparison skipped — never
#                                 silently.
#
# Knobs (env):
#   REPLAY_BENCH_REQUESTS  trace length (default 2,000,000)
#   REPRO_SEED             trace seed (default 42)
#   REPLAY_BENCH_OUT       output path (default BENCH_replay.json)
#   REPLAY_BENCH_TRACE     replay a .bin/.csv trace file instead of
#                          generating one
#   REPLAY_SHARDS          shard counts for the scaling curve
#                          (default 1,2,4,8)
#   REPLAY_PREFETCH_DIST   pipelined lookahead: unset/auto = heuristic,
#                          0 = off, K = fixed depth
#   BENCH_GATE_TOLERANCE   allowed fractional regression in --gate mode
#                          (default 0.10); shared by the per-policy,
#                          per-shard, and --daemon gates
#   CDND_BENCH_REQUESTS    --daemon trace length (default 500,000)
#   CDND_BENCH_SHARDS      --daemon shard counts (default 1,2,4)
#   CDND_BENCH_OUT         --daemon output path (default BENCH_daemon.json)
#   REPLAY_STREAM_SMALL    --stream small-corpus length (default 2,000,000)
#   REPLAY_STREAM_REQUESTS --stream big-corpus length (default 100,000,000;
#                          0 skips the big section with a note)
#   REPLAY_STREAM_OUT      --stream output path (default BENCH_stream.json)
#   REPLAY_STREAM_CACHE_BYTES, REPLAY_STREAM_RSS_RATIO,
#   REPLAY_STREAM_MIN_RATIO, REPLAY_STREAM_CHUNK
#                          --stream gate/engine knobs (see replay_bench docs)
set -euo pipefail
cd "$(dirname "$0")/.."

GATE=0
DAEMON=0
STREAM=0
while [[ $# -gt 0 ]]; do
    case "$1" in
        --gate)
            GATE=1
            shift
            ;;
        --daemon)
            DAEMON=1
            shift
            ;;
        --stream)
            STREAM=1
            shift
            ;;
        --shards)
            if [[ -z "${2:-}" ]]; then
                echo "error: --shards needs a count (or comma list)" >&2
                exit 2
            fi
            export REPLAY_SHARDS="$2"
            shift 2
            ;;
        *)
            echo "error: unknown argument: $1" >&2
            exit 2
            ;;
    esac
done

TOLERANCE="${BENCH_GATE_TOLERANCE:-0.10}"

if [[ "$STREAM" == 1 ]]; then
    # Out-of-core streaming bench: BENCH_stream.json points are one JSON
    # object per line keyed by (policy, requests). The flat-RSS, ledger
    # identity, and pipeline-bound gates are absolute and enforced inside
    # replay_bench --stream itself (it exits nonzero on any of them), so
    # this section only adds the baseline throughput comparison.
    OUT="${REPLAY_STREAM_OUT:-BENCH_stream.json}"
    BASELINE=""
    if [[ -f "$OUT" ]]; then
        BASELINE="${OUT%.json}.prev.json"
        cp "$OUT" "$BASELINE"
        echo "baseline: previous $OUT saved as $BASELINE"
    else
        echo "baseline: no previous $OUT — first run, skipping comparison"
        if [[ "$GATE" == 1 ]]; then
            echo "--gate: no committed baseline to gate against; absolute gates still apply"
        fi
    fi

    cargo build --release -p cdn-sim --bin replay_bench
    REPLAY_STREAM_OUT="$OUT" \
        cargo run --release -q -p cdn-sim --bin replay_bench -- --stream >/dev/null

    if [[ -n "$BASELINE" && -f "$BASELINE" ]]; then
        if ! grep -q '"replay_stream_bench_v1"' "$BASELINE"; then
            echo "baseline predates replay_stream_bench_v1: measured fresh, comparison skipped"
        else
            stream_rows() {
                grep -o '{"policy": "[^"]*", "requests": [0-9]*, "requests_per_sec": [0-9.]*' "$1" |
                    sed 's/{"policy": "//; s/", "requests": /\//; s/, "requests_per_sec": / /'
            }
            gate_rc=0
            while read -r key prev_rps; do
                cur_rps="$(stream_rows "$OUT" | awk -v k="$key" '$1 == k {print $2}')"
                if [[ -z "$cur_rps" ]]; then
                    echo "--gate: streamed point $key missing from current run; skipping"
                    continue
                fi
                awk -v k="$key" -v p="$prev_rps" -v c="$cur_rps" 'BEGIN {
                    printf "streamed %s: %.2f -> %.2f Mreq/s (%+.1f%%)\n",
                        k, p / 1e6, c / 1e6, (c - p) / p * 100
                }'
                if [[ "$GATE" == 1 ]] && ! awk -v p="$prev_rps" -v c="$cur_rps" -v tol="$TOLERANCE" \
                    'BEGIN { exit !(c >= p * (1 - tol)) }'; then
                    echo "--gate: FAIL streamed point $key regressed beyond tolerance"
                    gate_rc=1
                fi
            done < <(stream_rows "$BASELINE")
            if [[ "$GATE" == 1 ]]; then
                if [[ "$gate_rc" != 0 ]]; then
                    awk -v tol="$TOLERANCE" 'BEGIN {
                        printf "--gate: streamed throughput regression beyond %.0f%% tolerance\n", tol * 100
                    }'
                    exit 1
                fi
                echo "--gate: all streamed points within tolerance"
            fi
        fi
    fi
    exit 0
fi

if [[ "$DAEMON" == 1 ]]; then
    # Daemon serving-path bench: BENCH_daemon.json rows are one JSON
    # object per line keyed by (policy, shards), machine-written by
    # cdnd_bench, gated on daemon_requests_per_sec with the shared
    # tolerance. Exactness vs the serial reference is enforced inside
    # the binary itself (it exits nonzero on any ledger mismatch).
    OUT="${CDND_BENCH_OUT:-BENCH_daemon.json}"
    BASELINE=""
    if [[ -f "$OUT" ]]; then
        BASELINE="${OUT%.json}.prev.json"
        cp "$OUT" "$BASELINE"
        echo "baseline: previous $OUT saved as $BASELINE"
    else
        echo "baseline: no previous $OUT — first run, skipping comparison"
        if [[ "$GATE" == 1 ]]; then
            echo "--gate: no committed baseline to gate against; measuring only"
            GATE=0
        fi
    fi

    cargo build --release -p cdnd --bin cdnd_bench
    CDND_BENCH_OUT="$OUT" cargo run --release -q -p cdnd --bin cdnd_bench >/dev/null

    if [[ "$GATE" == 1 && -n "$BASELINE" && -f "$BASELINE" ]]; then
        daemon_rows() {
            grep -o '{"policy": "[^"]*", "shards": [0-9]*, "daemon_requests_per_sec": [0-9.]*' "$1" |
                sed 's/{"policy": "//; s/", "shards": /\//; s/, "daemon_requests_per_sec": / /'
        }
        gate_rc=0
        while read -r key prev_rps; do
            cur_rps="$(daemon_rows "$OUT" | awk -v k="$key" '$1 == k {print $2}')"
            if [[ -z "$cur_rps" ]]; then
                echo "--gate: daemon point $key missing from current run; skipping"
                continue
            fi
            if ! awk -v p="$prev_rps" -v c="$cur_rps" -v tol="$TOLERANCE" \
                'BEGIN { exit !(c >= p * (1 - tol)) }'; then
                awk -v pol="$key" -v p="$prev_rps" -v c="$cur_rps" 'BEGIN {
                    printf "--gate: FAIL daemon point %s regressed %.2f -> %.2f Mreq/s (%+.1f%%)\n",
                        pol, p / 1e6, c / 1e6, (c - p) / p * 100
                }'
                gate_rc=1
            fi
        done < <(daemon_rows "$BASELINE")
        if [[ "$gate_rc" != 0 ]]; then
            awk -v tol="$TOLERANCE" 'BEGIN {
                printf "--gate: daemon throughput regression beyond %.0f%% tolerance\n", tol * 100
            }'
            exit 1
        fi
        echo "--gate: all daemon points within tolerance"
    fi

    # Warm-restart section (schema v2): report time-to-restore and the
    # warm-vs-cold hit-ratio delta per policy, comparing against the
    # baseline where one exists. A schema-v1 baseline predates the
    # warm_restart section — say so explicitly and skip the comparison,
    # never silently pair nothing. Policies whose warm metrics are
    # suppressed (unsupported resident export) are reported as such; with
    # --gate, a policy that was supported in the baseline must stay
    # supported.
    warm_row() {
        grep '"hit_ratio_delta"' "$1" | grep -F "\"policy\": \"$2\"" || true
    }
    warm_field() {
        # warm_field <row> <field>: numeric value, "null", or empty.
        echo "$1" | grep -o "\"$2\": [0-9.nul-]*" | awk '{print $2}'
    }
    warm_gate_rc=0
    while read -r policy; do
        cur_row="$(warm_row "$OUT" "$policy")"
        restore_ms="$(warm_field "$cur_row" "time_to_restore_ms")"
        delta="$(warm_field "$cur_row" "hit_ratio_delta")"
        if [[ "$restore_ms" == "null" ]]; then
            echo "warm restart [$policy]: unsupported — metrics suppressed, not fabricated"
        else
            echo "warm restart [$policy]: time-to-restore ${restore_ms} ms, warm-vs-cold hit-ratio delta ${delta}"
        fi
        if [[ -n "$BASELINE" && -f "$BASELINE" ]]; then
            if ! grep -q '"warm_restart"' "$BASELINE"; then
                continue # explicit v1 note printed once below
            fi
            prev_row="$(warm_row "$BASELINE" "$policy")"
            if [[ -z "$prev_row" ]]; then
                echo "warm restart [$policy]: new policy, no baseline row"
                continue
            fi
            prev_ms="$(warm_field "$prev_row" "time_to_restore_ms")"
            if [[ "$prev_ms" != "null" && "$restore_ms" == "null" ]]; then
                echo "--gate: FAIL warm restart [$policy] regressed supported -> unsupported"
                warm_gate_rc=1
            fi
        fi
    done < <(grep '"hit_ratio_delta"' "$OUT" | grep -o '"policy": "[^"]*"' | sed 's/"policy": "//; s/"//')
    if [[ -n "$BASELINE" && -f "$BASELINE" ]] && ! grep -q '"warm_restart"' "$BASELINE"; then
        echo "daemon baseline is schema v1 (no warm_restart section): warm metrics measured fresh, comparison skipped"
    fi
    if [[ "$GATE" == 1 && "$warm_gate_rc" != 0 ]]; then
        echo "--gate: warm-restart support regression"
        exit 1
    fi

    # Availability + admission section (schema v3): every serving point
    # records client-observed availability — exactly 1.0 on a healthy
    # daemon — and the brownout drill must land exactly on the watermark
    # arithmetic. Both are absolute gates on the current run (the binary
    # enforces them too; this re-check keeps the artifact honest even if
    # it was produced elsewhere). A schema-v1/v2 baseline predates these
    # fields — say so explicitly and skip the comparison, never silently
    # pair nothing.
    v3_rc=0
    if ! grep -q '"availability"' "$OUT"; then
        echo "--gate: FAIL no availability fields in $OUT (schema older than v3?)"
        v3_rc=1
    fi
    while read -r av; do
        if [[ "$av" != "1.000000" ]]; then
            echo "--gate: FAIL daemon serving-point availability $av != 1.000000"
            v3_rc=1
        fi
    done < <(grep -o '"availability": [0-9.]*' "$OUT" | awk '{print $2}')
    if grep -q '"admission"' "$OUT" && grep -q '"exact": true' "$OUT"; then
        echo "admission drill: per-class shed/deadline counts exact vs watermark arithmetic"
    else
        echo "--gate: FAIL admission drill missing or inexact in $OUT"
        v3_rc=1
    fi
    if [[ "$v3_rc" != 0 ]]; then
        exit 1
    fi
    if [[ -n "$BASELINE" && -f "$BASELINE" ]] && ! grep -q '"admission"' "$BASELINE"; then
        echo "daemon baseline is schema v1/v2 (no availability/admission fields): v3 gates evaluated on the current run only, comparison skipped"
    fi
    exit 0
fi

OUT="${REPLAY_BENCH_OUT:-BENCH_replay.json}"
BASELINE=""
if [[ -f "$OUT" ]]; then
    BASELINE="${OUT%.json}.prev.json"
    cp "$OUT" "$BASELINE"
    echo "baseline: previous $OUT saved as $BASELINE"
else
    echo "baseline: no previous $OUT — first run, skipping comparison"
    if [[ "$GATE" == 1 ]]; then
        echo "--gate: no committed baseline to gate against; measuring only"
        GATE=0
    fi
fi

cargo build --release -p cdn-sim --bin replay_bench
cargo run --release -q -p cdn-sim --bin replay_bench

if [[ -n "$BASELINE" && -f "$BASELINE" ]]; then
    extract() {
        grep -o '"aggregate_requests_per_sec": [0-9.]*' "$1" | awk '{print $2}'
    }
    prev="$(extract "$BASELINE" || true)"
    cur="$(extract "$OUT" || true)"
    if [[ -n "$prev" && -n "$cur" ]]; then
        awk -v p="$prev" -v c="$cur" 'BEGIN {
            printf "sweep aggregate vs baseline: %.2f -> %.2f Mreq/s (%+.1f%%)\n",
                p / 1e6, c / 1e6, (c - p) / p * 100
        }'
    else
        echo "baseline present but not comparable; skipping comparison"
    fi

    if [[ "$GATE" == 1 ]]; then
        # Per-policy gate: each "policy" row carries requests_per_sec;
        # pair baseline and current rows by policy name and fail on any
        # regression beyond the tolerance. Rows are one JSON object per
        # line, machine-written by replay_bench.
        per_policy() {
            grep -o '{"policy": "[^"]*", "requests_per_sec": [0-9.]*' "$1" |
                sed 's/{"policy": "//; s/", "requests_per_sec": / /'
        }
        gate_rc=0
        while read -r policy prev_rps; do
            cur_rps="$(per_policy "$OUT" | awk -v p="$policy" '$1 == p {print $2}')"
            if [[ -z "$cur_rps" ]]; then
                echo "--gate: $policy missing from current run; skipping"
                continue
            fi
            if ! awk -v p="$prev_rps" -v c="$cur_rps" -v tol="$TOLERANCE" \
                'BEGIN { exit !(c >= p * (1 - tol)) }'; then
                awk -v pol="$policy" -v p="$prev_rps" -v c="$cur_rps" 'BEGIN {
                    printf "--gate: FAIL %s regressed %.2f -> %.2f Mreq/s (%+.1f%%)\n",
                        pol, p / 1e6, c / 1e6, (c - p) / p * 100
                }'
                gate_rc=1
            fi
        done < <(per_policy "$BASELINE")
        # Per-shard gate: shard_scaling points carry one JSON object per
        # line keyed by (policy, shards); pair them by that key and apply
        # the same tolerance to the aggregate throughput. Baselines
        # written before the shard_scaling section existed (pre-v3) have
        # no such rows — say so explicitly and skip the gate rather than
        # silently pairing nothing.
        per_shard() {
            grep -o '{"policy": "[^"]*", "shards": [0-9]*, "aggregate_requests_per_sec": [0-9.]*' "$1" |
                sed 's/{"policy": "//; s/", "shards": /\//; s/, "aggregate_requests_per_sec": / /'
        }
        if ! grep -q '"shard_scaling"' "$BASELINE"; then
            echo "--gate: baseline predates shard_scaling section; skipping shard gate"
        fi
        while read -r key prev_rps; do
            cur_rps="$(per_shard "$OUT" | awk -v k="$key" '$1 == k {print $2}')"
            if [[ -z "$cur_rps" ]]; then
                echo "--gate: shard point $key missing from current run; skipping"
                continue
            fi
            if ! awk -v p="$prev_rps" -v c="$cur_rps" -v tol="$TOLERANCE" \
                'BEGIN { exit !(c >= p * (1 - tol)) }'; then
                awk -v pol="$key" -v p="$prev_rps" -v c="$cur_rps" 'BEGIN {
                    printf "--gate: FAIL shard point %s regressed %.2f -> %.2f Mreq/s (%+.1f%%)\n",
                        pol, p / 1e6, c / 1e6, (c - p) / p * 100
                }'
                gate_rc=1
            fi
        done < <(per_shard "$BASELINE")
        if [[ "$gate_rc" != 0 ]]; then
            awk -v tol="$TOLERANCE" 'BEGIN {
                printf "--gate: throughput regression beyond %.0f%% tolerance\n", tol * 100
            }'
            exit 1
        fi
        echo "--gate: all policies and shard points within tolerance"
    fi
fi
